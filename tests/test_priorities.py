"""Priority-assignment policies."""

import pytest

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec, sporadic_spec
from repro.model.priorities import (
    assign_deadline_monotonic,
    assign_rate_monotonic,
    clamp_to_levels,
)


def flow(name, *, deadline, period=0.02, n=1):
    spec = GmfSpec(
        min_separations=(period,) * n,
        deadlines=(deadline,) * n,
        jitters=(0.0,) * n,
        payload_bits=(1000,) * n,
    )
    return Flow(name=name, spec=spec, route=("h0", "s0", "h1"), priority=0)


class TestDeadlineMonotonic:
    def test_tighter_deadline_higher_priority(self):
        fs = assign_deadline_monotonic(
            [flow("slow", deadline=0.5), flow("fast", deadline=0.01)]
        )
        by = {f.name: f.priority for f in fs}
        assert by["fast"] > by["slow"]

    def test_order_preserved(self):
        fs = [flow("a", deadline=0.5), flow("b", deadline=0.1)]
        out = assign_deadline_monotonic(fs)
        assert [f.name for f in out] == ["a", "b"]

    def test_distinct_priorities(self):
        fs = assign_deadline_monotonic(
            [flow(f"f{i}", deadline=0.1) for i in range(5)]
        )
        assert len({f.priority for f in fs}) == 5

    def test_ties_broken_by_name_deterministic(self):
        fs1 = assign_deadline_monotonic(
            [flow("b", deadline=0.1), flow("a", deadline=0.1)]
        )
        fs2 = assign_deadline_monotonic(
            [flow("a", deadline=0.1), flow("b", deadline=0.1)]
        )
        assert {f.name: f.priority for f in fs1} == {
            f.name: f.priority for f in fs2
        }


class TestRateMonotonic:
    def test_faster_flow_higher_priority(self):
        fs = assign_rate_monotonic(
            [flow("slow", deadline=0.1, period=0.1), flow("fast", deadline=0.1, period=0.005)]
        )
        by = {f.name: f.priority for f in fs}
        assert by["fast"] > by["slow"]

    def test_uses_mean_separation_for_gmf(self):
        # 4 frames at 10 ms (mean 10 ms) vs 1 frame at 15 ms.
        fs = assign_rate_monotonic(
            [
                flow("gmf", deadline=0.1, period=0.010, n=4),
                flow("spor", deadline=0.1, period=0.015),
            ]
        )
        by = {f.name: f.priority for f in fs}
        assert by["gmf"] > by["spor"]


class TestClampToLevels:
    def test_empty(self):
        assert clamp_to_levels([], 4) == []

    def test_levels_bounded(self):
        fs = [flow(f"f{i}", deadline=0.1 * (i + 1)) for i in range(10)]
        fs = assign_deadline_monotonic(fs)
        clamped = clamp_to_levels(fs, 4)
        assert all(0 <= f.priority < 4 for f in clamped)

    def test_order_preserving(self):
        fs = assign_deadline_monotonic(
            [flow(f"f{i}", deadline=0.1 * (i + 1)) for i in range(8)]
        )
        clamped = clamp_to_levels(fs, 3)
        orig = {f.name: f.priority for f in fs}
        new = {f.name: f.priority for f in clamped}
        names = sorted(orig, key=orig.get)
        for a, b in zip(names, names[1:]):
            assert new[a] <= new[b]

    def test_single_level_collapses_everything(self):
        fs = [flow(f"f{i}", deadline=0.1 * (i + 1)) for i in range(5)]
        clamped = clamp_to_levels(fs, 1)
        assert {f.priority for f in clamped} == {0}

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            clamp_to_levels([], 0)
