"""The load-bearing property: simulation never exceeds the analysis bound.

Hypothesis generates random small scenarios (topology choice, flow
shapes, priorities, release phases); for each schedulable scenario both
simulator modes run and every observed per-frame response is checked
against the holistic bound.  Any counterexample here is a soundness bug
in the analysis reconstruction.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.sim.release import EagerRelease, BurstJitterPolicy, SpreadJitterPolicy
from repro.sim.simulator import SimConfig, simulate
from repro.util.units import mbps, ms
from repro.workloads.topologies import line_network, star_network


def flow_strategy(route_pool, name):
    return st.builds(
        lambda route, n, sep_ms, payloads, prio, jit_ms: Flow(
            name=name,
            spec=GmfSpec(
                min_separations=(sep_ms * 1e-3,) * n,
                deadlines=(1.0,) * n,
                jitters=(jit_ms * 1e-3,) * n,
                payload_bits=tuple(payloads[:n]),
            ),
            route=route,
            priority=prio,
        ),
        route=st.sampled_from(route_pool),
        n=st.integers(1, 3),
        sep_ms=st.floats(5.0, 40.0),
        payloads=st.lists(st.integers(500, 60_000), min_size=3, max_size=3),
        prio=st.integers(0, 7),
        jit_ms=st.floats(0.0, 2.0),
    )


ROUTES_STAR = [
    ("h0", "sw", "h2"),
    ("h1", "sw", "h2"),
    ("h0", "sw", "h1"),
]
ROUTES_LINE = [
    ("h0_0", "sw0", "sw1", "h1_0"),
    ("h0_1", "sw0", "sw1", "h1_1"),
    ("h0_0", "sw0", "sw1", "h1_1"),
]


class TestSoundnessStar:
    @given(
        f0=flow_strategy(ROUTES_STAR, "f0"),
        f1=flow_strategy(ROUTES_STAR, "f1"),
        mode=st.sampled_from(["event", "rotation"]),
        phase1_ms=st.floats(0.0, 10.0),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_bounds_dominate_simulation(self, f0, f1, mode, phase1_ms):
        net = star_network(3, speed_bps=mbps(100))
        flows = [f0, f1]
        analysis = holistic_analysis(net, flows)
        if not analysis.converged:
            return  # overloaded instance: nothing to validate
        trace = simulate(
            net,
            flows,
            config=SimConfig(duration=0.6, switch_mode=mode),
            release_policies={
                "f0": EagerRelease(),
                "f1": EagerRelease(phase=phase1_ms * 1e-3),
            },
        )
        for f in flows:
            for k in range(f.spec.n_frames):
                observed = trace.worst_response(f.name, k)
                if observed == -math.inf:
                    continue
                bound = analysis.result(f.name).frame(k).response
                assert observed <= bound + 1e-9, (
                    f"VIOLATION {f.name}[{k}] mode={mode}: "
                    f"sim {observed} > bound {bound}"
                )


class TestSoundnessLine:
    @given(
        f0=flow_strategy(ROUTES_LINE, "f0"),
        f1=flow_strategy(ROUTES_LINE, "f1"),
        burst=st.booleans(),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_two_switch_bounds_dominate(self, f0, f1, burst):
        net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
        flows = [f0, f1]
        analysis = holistic_analysis(net, flows)
        if not analysis.converged:
            return
        jitter_policy = BurstJitterPolicy() if burst else SpreadJitterPolicy()
        trace = simulate(
            net,
            flows,
            config=SimConfig(duration=0.6, switch_mode="event"),
            jitter_policies={f.name: jitter_policy for f in flows},
        )
        for f in flows:
            for k in range(f.spec.n_frames):
                observed = trace.worst_response(f.name, k)
                if observed == -math.inf:
                    continue
                bound = analysis.result(f.name).frame(k).response
                assert observed <= bound + 1e-9


class TestSoundnessAdversarialOrder:
    """Regression for the Eq. 10 min(t,.) degeneracy: a competitor's
    packet enqueued *first* at the critical instant must be charged."""

    @pytest.mark.parametrize("first", ["victim", "competitor"])
    def test_simultaneous_arrival_order(self, first):
        net = star_network(3, speed_bps=mbps(100))
        victim = Flow(
            "victim",
            GmfSpec((ms(20),), (1.0,), (0.0,), (30_000,)),
            ("h0", "sw", "h2"),
            priority=3,
        )
        competitor = Flow(
            "competitor",
            GmfSpec((ms(20),), (1.0,), (0.0,), (30_000,)),
            ("h0", "sw", "h2"),
            priority=3,
        )
        flows = (
            [victim, competitor] if first == "victim" else [competitor, victim]
        )
        analysis = holistic_analysis(net, flows)
        trace = simulate(net, flows, duration=0.3)
        for f in flows:
            observed = trace.worst_response(f.name, 0)
            bound = analysis.result(f.name).frame(0).response
            assert observed <= bound + 1e-9

    def test_strict_paper_can_be_undercut(self):
        """Documented: the printed equations (strict mode) are NOT sound
        for simultaneous arrivals — the corrected mode exists for this.

        Construction: a large multi-fragment competitor "b" is enqueued
        *first* at the shared source; the victim "a" waits ~13.5 ms of
        FIFO serialisation the capped Eq. 10/17 charges nothing for.
        The flows diverge at the switch, so no downstream term (MFT,
        hep interference) can mask the gap.  If this test ever fails,
        strict mode no longer reflects the printed equations.
        """
        net = star_network(3, speed_bps=mbps(10))
        b = Flow(
            "b",
            GmfSpec((ms(50),), (1.0,), (0.0,), (120_000,)),  # 11 fragments
            ("h0", "sw", "h1"),
            priority=3,
        )
        a = Flow(
            "a",
            GmfSpec((ms(50),), (1.0,), (0.0,), (8_000,)),  # 1 fragment
            ("h0", "sw", "h2"),
            priority=3,
        )
        strict = holistic_analysis(
            net, [b, a], AnalysisOptions(strict_paper=True)
        )
        assert strict.converged
        trace = simulate(net, [b, a], duration=0.3)
        observed = trace.worst_response("a", 0)
        bound = strict.result("a").frame(0).response
        assert observed > bound
        # The corrected analysis covers the same run.
        corrected = holistic_analysis(net, [b, a])
        assert observed <= corrected.result("a").frame(0).response + 1e-9
