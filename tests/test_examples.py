"""Smoke tests: every shipped example runs to completion.

The examples contain their own assertions (bounds dominate simulation,
GMF admits at least as much as sporadic, ...), so a clean exit is a
meaningful check, not just an import test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert len(EXAMPLES) >= 4  # quickstart + >= 3 scenarios


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
