"""GMF traffic model: validation, derived quantities, rotation invariance."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.gmf import GmfSpec, frames_overview, gmf_from_uniform, sporadic_spec


def make_spec(n=3, t=0.03, d=0.1, j=0.0, s=8000):
    return GmfSpec(
        min_separations=(t,) * n,
        deadlines=(d,) * n,
        jitters=(j,) * n,
        payload_bits=(s,) * n,
    )


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one frame"):
            GmfSpec((), (), (), ())

    def test_tuple_length_mismatch(self):
        with pytest.raises(ValueError, match="deadlines"):
            GmfSpec((0.03,), (0.1, 0.1), (0.0,), (800,))

    def test_negative_separation_rejected(self):
        with pytest.raises(ValueError):
            GmfSpec((-0.01,), (0.1,), (0.0,), (800,))

    def test_all_zero_separations_rejected(self):
        with pytest.raises(ValueError, match="TSUM"):
            GmfSpec((0.0, 0.0), (0.1, 0.1), (0.0, 0.0), (800, 800))

    def test_some_zero_separations_allowed(self):
        """Bursty cycles with zero gaps are legal GMF (back-to-back frames)."""
        spec = GmfSpec((0.0, 0.03), (0.1, 0.1), (0.0, 0.0), (800, 800))
        assert spec.tsum == pytest.approx(0.03)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError):
            GmfSpec((0.03,), (0.0,), (0.0,), (800,))

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            GmfSpec((0.03,), (0.1,), (-1e-3,), (800,))

    def test_non_integer_payload_rejected(self):
        with pytest.raises(TypeError):
            GmfSpec((0.03,), (0.1,), (0.0,), (800.5,))

    def test_zero_payload_rejected(self):
        with pytest.raises(ValueError):
            GmfSpec((0.03,), (0.1,), (0.0,), (0,))

    def test_infinite_separation_rejected(self):
        with pytest.raises(ValueError):
            GmfSpec((math.inf,), (0.1,), (0.0,), (800,))


class TestDerived:
    def test_n_frames(self, video_spec):
        assert video_spec.n_frames == 3

    def test_tsum_video(self, video_spec):
        assert video_spec.tsum == pytest.approx(0.090)

    def test_paper_tsum_270ms(self):
        """Fig. 3 example: 9 frames x 30 ms -> TSUM = 270 ms (Eq. 6)."""
        spec = make_spec(n=9, t=0.030)
        assert spec.tsum == pytest.approx(0.270)

    def test_max_jitter(self):
        spec = GmfSpec((0.03,) * 2, (0.1,) * 2, (1e-3, 5e-3), (800, 800))
        assert spec.max_jitter == pytest.approx(5e-3)

    def test_min_separation(self):
        spec = GmfSpec((0.03, 0.01), (0.1,) * 2, (0.0,) * 2, (800, 800))
        assert spec.min_separation == pytest.approx(0.01)

    def test_max_payload(self, video_spec):
        assert video_spec.max_payload_bits == 120_000

    def test_describe_mentions_frames(self, video_spec):
        assert "n=3" in video_spec.describe()


class TestSeparationWindow:
    def test_single_frame_window_is_zero(self, video_spec):
        for k in range(3):
            assert video_spec.separation_window(k, 1) == 0.0

    def test_two_frames(self, video_spec):
        assert video_spec.separation_window(0, 2) == pytest.approx(0.030)

    def test_wraps_around_cycle(self):
        spec = GmfSpec((0.01, 0.02, 0.03), (0.1,) * 3, (0.0,) * 3, (8, 8, 8))
        # Window of 3 frames starting at frame 2 spans T2 then T0.
        assert spec.separation_window(2, 3) == pytest.approx(0.03 + 0.01)
        assert spec.separation_window(2, 2) == pytest.approx(0.03)

    def test_zero_count_rejected(self, video_spec):
        with pytest.raises(ValueError):
            video_spec.separation_window(0, 0)


class TestRotation:
    def test_rotation_preserves_tsum(self, video_spec):
        for off in range(5):
            assert video_spec.rotate(off).tsum == pytest.approx(video_spec.tsum)

    def test_rotation_permutes_payloads(self, video_spec):
        rot = video_spec.rotate(1)
        assert rot.payload_bits == (40_000, 40_000, 120_000)

    def test_full_rotation_is_identity(self, video_spec):
        assert video_spec.rotate(3) == video_spec

    @given(offset=st.integers(-10, 10))
    def test_rotation_multiset_invariant(self, offset):
        spec = GmfSpec(
            (0.01, 0.02, 0.03, 0.04),
            (0.1, 0.2, 0.3, 0.4),
            (0.0, 1e-3, 2e-3, 3e-3),
            (100, 200, 300, 400),
        )
        rot = spec.rotate(offset)
        assert sorted(rot.payload_bits) == sorted(spec.payload_bits)
        assert sorted(rot.min_separations) == sorted(spec.min_separations)


class TestHelpers:
    def test_sporadic_spec(self):
        spec = sporadic_spec(period=0.02, deadline=0.05, payload_bits=1280)
        assert spec.n_frames == 1
        assert spec.tsum == pytest.approx(0.02)

    def test_gmf_from_uniform(self):
        spec = gmf_from_uniform(
            separations=[0.03, 0.03], deadline=0.1, payload_bits=[100, 200]
        )
        assert spec.deadlines == (0.1, 0.1)
        assert spec.payload_bits == (100, 200)

    def test_gmf_from_uniform_length_mismatch(self):
        with pytest.raises(ValueError):
            gmf_from_uniform(
                separations=[0.03], deadline=0.1, payload_bits=[100, 200]
            )

    def test_frames_overview_rows(self, video_spec):
        rows = list(frames_overview(video_spec))
        assert len(rows) == 3
        assert rows[0] == (0, 0.030, 0.100, 0.001, 120_000)


class TestHypothesisValidSpecs:
    @given(
        n=st.integers(1, 6),
        t=st.floats(1e-4, 1.0),
        s=st.integers(64, 10**6),
        j=st.floats(0, 0.1),
    )
    @settings(max_examples=50)
    def test_uniform_specs_always_valid(self, n, t, s, j):
        spec = GmfSpec(
            min_separations=(t,) * n,
            deadlines=(1.0,) * n,
            jitters=(j,) * n,
            payload_bits=(s,) * n,
        )
        assert spec.tsum == pytest.approx(n * t)
        assert spec.rotate(1).tsum == pytest.approx(spec.tsum)
