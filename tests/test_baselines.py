"""Baseline analyses: sporadic/cycle collapse dominance."""

import pytest

from repro.baselines.bounds import demand_utilization_bound
from repro.baselines.sporadic import (
    cycle_collapse,
    sporadic_collapse,
    sporadic_holistic_analysis,
)
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.util.units import ms
from repro.workloads.mpeg import paper_fig3_spec


@pytest.fixture
def mpeg_flow(two_switch_net):
    return Flow(
        name="mpeg",
        spec=paper_fig3_spec(deadline=ms(150)),
        route=("h0", "s0", "s1", "h2"),
        priority=5,
    )


class TestSporadicCollapse:
    def test_period_is_min_separation(self, mpeg_flow):
        c = sporadic_collapse(mpeg_flow)
        assert c.spec.n_frames == 1
        assert c.spec.min_separations[0] == min(
            mpeg_flow.spec.min_separations
        )

    def test_payload_is_max(self, mpeg_flow):
        c = sporadic_collapse(mpeg_flow)
        assert c.spec.payload_bits[0] == max(mpeg_flow.spec.payload_bits)

    def test_deadline_is_tightest(self, mpeg_flow):
        c = sporadic_collapse(mpeg_flow)
        assert c.spec.deadlines[0] == min(mpeg_flow.spec.deadlines)

    def test_route_and_priority_preserved(self, mpeg_flow):
        c = sporadic_collapse(mpeg_flow)
        assert c.route == mpeg_flow.route
        assert c.priority == mpeg_flow.priority
        assert c.name == mpeg_flow.name

    def test_utilization_dominates_gmf(self, mpeg_flow, two_switch_net):
        """The collapse reserves strictly more bandwidth for bursty
        video (the paper's motivation)."""
        from repro.core.context import AnalysisContext

        ctx = AnalysisContext(two_switch_net, [mpeg_flow])
        ctx_c = AnalysisContext(two_switch_net, [sporadic_collapse(mpeg_flow)])
        u_gmf = ctx.demand(mpeg_flow, "s0", "s1").utilization
        u_col = ctx_c.demand(
            sporadic_collapse(mpeg_flow), "s0", "s1"
        ).utilization
        assert u_col > 2 * u_gmf


class TestCycleCollapse:
    def test_period_is_tsum(self, mpeg_flow):
        c = cycle_collapse(mpeg_flow)
        assert c.spec.min_separations[0] == pytest.approx(
            mpeg_flow.spec.tsum
        )

    def test_payload_is_cycle_sum(self, mpeg_flow):
        c = cycle_collapse(mpeg_flow)
        assert c.spec.payload_bits[0] == sum(mpeg_flow.spec.payload_bits)


class TestBaselineAnalysis:
    def test_sporadic_bound_dominates_gmf(self, two_switch_net, mpeg_flow):
        """Pessimism: the sporadic baseline's bound is at least the GMF
        bound for the worst frame."""
        gmf = holistic_analysis(two_switch_net, [mpeg_flow])
        spor = sporadic_holistic_analysis(two_switch_net, [mpeg_flow])
        assert (
            spor.result("mpeg").worst_response
            >= gmf.result("mpeg").worst_response - 1e-12
        )

    def test_unknown_collapse_rejected(self, two_switch_net, mpeg_flow):
        with pytest.raises(ValueError):
            sporadic_holistic_analysis(
                two_switch_net, [mpeg_flow], collapse="wavelet"
            )

    def test_cycle_analysis_runs(self, two_switch_net, mpeg_flow):
        res = sporadic_holistic_analysis(
            two_switch_net, [mpeg_flow], collapse="cycle"
        )
        assert "mpeg" in res.flow_results


class TestUtilizationBound:
    def test_light_load_accepted(self, two_switch_net, mpeg_flow):
        assert demand_utilization_bound(two_switch_net, [mpeg_flow])

    def test_empty_set_accepted(self, two_switch_net):
        assert demand_utilization_bound(two_switch_net, [])

    def test_threshold_rejects(self, two_switch_net, mpeg_flow):
        assert not demand_utilization_bound(
            two_switch_net, [mpeg_flow], threshold=1e-6
        )
