"""Admission controller (Sec. 3.5's closing paragraph)."""

import pytest

from repro.core.admission import AdmissionController
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms
from repro.workloads.topologies import star_network


def call_flow(name, route, payload=1_600_000 // 50, deadline=ms(20)):
    # ~1.6 Mbit/s per flow on the default 10 Mbit/s star below.
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(deadline,),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=5,
    )


@pytest.fixture
def controller():
    net = star_network(4, speed_bps=mbps(10))
    return AdmissionController(net)


class TestAdmission:
    def test_first_flow_accepted(self, controller):
        d = controller.request(call_flow("c0", ("h0", "sw", "h1")))
        assert d.accepted
        assert controller.admitted_flows[0].name == "c0"

    def test_saturation_eventually_rejects(self, controller):
        accepted = 0
        for i in range(40):
            d = controller.request(call_flow(f"c{i}", ("h0", "sw", "h1")))
            if not d.accepted:
                break
            accepted += 1
        assert 0 < accepted < 40
        # Rejection does not change admitted state.
        assert len(controller.admitted_flows) == accepted

    def test_rejection_reason_names_flow_and_frame(self, controller):
        last = None
        for i in range(40):
            last = controller.request(call_flow(f"c{i}", ("h0", "sw", "h1")))
            if not last.accepted:
                break
        assert last is not None and not last.accepted
        assert "deadline" in last.reason or "diverged" in last.reason

    def test_duplicate_name_rejected(self, controller):
        controller.request(call_flow("c0", ("h0", "sw", "h1")))
        with pytest.raises(ValueError, match="already admitted"):
            controller.request(call_flow("c0", ("h2", "sw", "h3")))

    def test_invalid_route_rejected(self, controller):
        with pytest.raises(Exception):
            controller.request(call_flow("bad", ("h0", "h1")))

    def test_release_frees_capacity(self, controller):
        admitted = []
        for i in range(40):
            d = controller.request(call_flow(f"c{i}", ("h0", "sw", "h1")))
            if not d.accepted:
                break
            admitted.append(f"c{i}")
        controller.release(admitted[0])
        retry = controller.request(call_flow("retry", ("h0", "sw", "h1")))
        assert retry.accepted

    def test_release_unknown_raises(self, controller):
        with pytest.raises(KeyError):
            controller.release("ghost")

    def test_last_analysis_tracks_admitted_set(self, controller):
        assert controller.last_analysis is None
        controller.request(call_flow("c0", ("h0", "sw", "h1")))
        assert controller.last_analysis is not None
        assert set(controller.last_analysis.flow_results) == {"c0"}

    def test_initial_flows_admitted_on_construction(self):
        net = star_network(4, speed_bps=mbps(10))
        ctrl = AdmissionController(
            net, initial_flows=[call_flow("c0", ("h0", "sw", "h1"))]
        )
        assert len(ctrl.admitted_flows) == 1

    def test_initial_overload_raises(self):
        net = star_network(4, speed_bps=mbps(10))
        flows = [
            call_flow(f"c{i}", ("h0", "sw", "h1"), payload=900_000)
            for i in range(3)
        ]
        with pytest.raises(ValueError, match="not admissible"):
            AdmissionController(net, initial_flows=flows)

    def test_decision_carries_analysis(self, controller):
        d = controller.request(call_flow("c0", ("h0", "sw", "h1")))
        assert d.analysis.result("c0").schedulable


class TestFastReject:
    def test_overload_rejected_without_analysis(self):
        from repro.util.units import mbps

        net = star_network(4, speed_bps=mbps(10))
        ctrl = AdmissionController(net)
        hog = call_flow("hog", ("h0", "sw", "h1"), payload=2_500_000)
        decision = ctrl.request(hog)
        assert not decision.accepted
        assert decision.analysis is None
        assert "utilisation" in decision.reason

    def test_fast_reject_can_be_disabled(self):
        from repro.util.units import mbps

        net = star_network(4, speed_bps=mbps(10))
        ctrl = AdmissionController(net, fast_reject=False)
        hog = call_flow("hog", ("h0", "sw", "h1"), payload=2_500_000)
        decision = ctrl.request(hog)
        assert not decision.accepted
        assert decision.analysis is not None  # full (diverged) analysis

    def test_fast_reject_agrees_with_full_analysis(self):
        """Both paths reject the same overload and accept the same
        feasible flow (the pre-check is necessary, not sufficient)."""
        from repro.util.units import mbps

        for fast in (True, False):
            net = star_network(4, speed_bps=mbps(10))
            ctrl = AdmissionController(net, fast_reject=fast)
            ok = ctrl.request(call_flow("ok", ("h0", "sw", "h1")))
            assert ok.accepted
            bad = ctrl.request(
                call_flow("bad", ("h0", "sw", "h1"), payload=2_500_000)
            )
            assert not bad.accepted
