"""Command-line interface over scenario files."""

import json

import pytest

from repro.cli import main
from repro.io import save_scenario
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms


@pytest.fixture
def scenario_file(two_switch_net, tmp_path):
    flow = Flow(
        name="video",
        spec=GmfSpec(
            min_separations=(ms(30),),
            deadlines=(ms(100),),
            jitters=(0.0,),
            payload_bits=(60_000,),
        ),
        route=("h0", "s0", "s1", "h2"),
        priority=5,
    )
    path = tmp_path / "scenario.json"
    save_scenario(path, two_switch_net, [flow])
    return str(path)


@pytest.fixture
def overloaded_file(two_switch_net, tmp_path):
    flows = [
        Flow(
            name=f"hog{i}",
            spec=GmfSpec(
                min_separations=(ms(20),),
                deadlines=(ms(100),),
                jitters=(0.0,),
                payload_bits=(1_500_000,),
            ),
            route=("h0", "s0", "s1", "h2") if i == 0 else ("h1", "s0", "s1", "h3"),
            priority=i,
        )
        for i in range(2)
    ]
    path = tmp_path / "overloaded.json"
    save_scenario(path, two_switch_net, flows)
    return str(path)


class TestAnalyze:
    def test_schedulable_exit_zero(self, scenario_file, capsys):
        assert main(["analyze", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "SCHEDULABLE" in out
        assert "video" in out

    def test_unschedulable_exit_one(self, overloaded_file, capsys):
        assert main(["analyze", overloaded_file]) == 1
        assert "NOT SCHEDULABLE" in capsys.readouterr().out

    def test_strict_flag(self, scenario_file, capsys):
        assert main(["analyze", scenario_file, "--strict"]) == 0


class TestSimulate:
    def test_runs_and_reports(self, scenario_file, capsys):
        assert main(["simulate", scenario_file, "-d", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "video" in out
        assert "deadline misses observed: 0" in out

    def test_rotation_mode(self, scenario_file, capsys):
        assert (
            main(["simulate", scenario_file, "-d", "0.3", "--mode", "rotation"])
            == 0
        )


class TestValidate:
    def test_no_violations(self, scenario_file, capsys):
        assert main(["validate", scenario_file, "-d", "0.3"]) == 0
        assert "violations: 0" in capsys.readouterr().out

    def test_diverged_analysis(self, overloaded_file, capsys):
        assert main(["validate", overloaded_file, "-d", "0.1"]) == 1


class TestReport:
    def test_lists_bottleneck(self, scenario_file, capsys):
        assert main(["report", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out

    def test_overload_flagged(self, overloaded_file, capsys):
        assert main(["report", overloaded_file]) == 1


class TestPlan:
    def test_already_schedulable(self, scenario_file, capsys):
        assert main(["plan", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "minimum uniform link-speed scale" in out

    def test_overloaded_needs_faster_links(self, overloaded_file, capsys):
        assert main(["plan", overloaded_file]) == 0
        out = capsys.readouterr().out
        # The required scale must be > 1 for the overloaded set.
        scale = float(out.split("schedulability:")[1].split()[0])
        assert scale > 1.0


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_file(self, tmp_path):
        bad = tmp_path / "nope.json"
        with pytest.raises(Exception):
            main(["analyze", str(bad)])


class TestGenerate:
    def test_list_families(self, capsys):
        assert main(["generate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "random-line" in out and "fat-tree" in out

    def test_write_scenario_file(self, tmp_path, capsys):
        path = tmp_path / "gen.json"
        code = main(
            [
                "generate",
                "--family",
                "voip-star",
                "--param",
                "seed=2",
                "--param",
                "n_calls=2",
                "-o",
                str(path),
            ]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 1
        assert doc["generator"]["family"] == "voip-star"
        # the generated file feeds straight back into analyze
        assert main(["analyze", str(path)]) == 0

    def test_stdout_without_output(self, capsys):
        assert main(["generate", "--family", "voip-star"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["generator"] == {"family": "voip-star", "params": {}}
        assert len(doc["flows"]) == 4  # the family default

    def test_missing_family(self):
        with pytest.raises(SystemExit):
            main(["generate"])


class TestCampaign:
    def test_grid_jobs_bit_identical(self, capsys):
        argv = [
            "campaign",
            "--family",
            "random-line",
            "--grid",
            "seed=0..3",
            "--grid",
            "n_flows=3",
        ]
        code1 = main(argv + ["--jobs", "1"])
        serial = capsys.readouterr().out
        code2 = main(argv + ["--jobs", "2"])
        parallel = capsys.readouterr().out
        assert code1 == code2
        strip = lambda text: [
            l for l in text.splitlines() if not l.startswith("campaign:")
        ]
        assert strip(serial) == strip(parallel)
        assert "campaign digest:" in serial

    def test_scenario_files_accepted(self, scenario_file, capsys):
        assert main(["campaign", scenario_file, "--actions", "analyze"]) == 0
        out = capsys.readouterr().out
        assert "analyze" in out

    def test_range_and_list_grid_syntax(self, capsys):
        code = main(
            [
                "campaign",
                "--family",
                "mpeg-line",
                "--grid",
                "n_switches=1,2",
                "--actions",
                "analyze",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("mpeg-line[") == 2

    def test_needs_input(self):
        with pytest.raises(SystemExit):
            main(["campaign"])


class TestEmbeddedScenarioBlocks:
    """v1 files carry analysis/sim blocks that the subcommands honor."""

    def test_simulate_honors_sim_block(self, tmp_path, capsys):
        from repro.scenario import build_scenario, save_scenario_file

        path = tmp_path / "fi.json"
        save_scenario_file(
            path,
            build_scenario(
                "failure-injection", nic_fifo_capacity=4, priority_levels=4
            ),
        )
        code = main(["simulate", str(path)])
        out = capsys.readouterr().out
        # the family's finite FIFOs drop fragments -> observed misses,
        # which a legacy load (unbounded FIFOs) would not produce
        assert "deadline misses observed: 0" not in out
        assert code == 1
        # the file's 1.0s duration is used, not the legacy 2.0 default
        assert "(1s," in out

    def test_duration_flag_overrides_sim_block(self, tmp_path, capsys):
        from repro.scenario import build_scenario, save_scenario_file

        path = tmp_path / "star.json"
        save_scenario_file(
            path, build_scenario("voip-star", n_calls=2, duration=1.0)
        )
        main(["simulate", str(path), "-d", "0.5"])
        assert "(0.5s," in capsys.readouterr().out

    def test_analyze_honors_analysis_block(self, tmp_path, capsys):
        import dataclasses

        from repro.scenario import build_scenario, save_scenario_file

        sc = build_scenario("voip-star", n_calls=2)
        sc = sc.with_options(
            dataclasses.replace(sc.options, holistic_max_iterations=123)
        )
        path = tmp_path / "opt.json"
        save_scenario_file(path, sc)
        # smoke: loads + analyzes fine with the embedded block
        assert main(["analyze", str(path)]) == 0
