"""Command-line interface over scenario files."""

import json

import pytest

from repro.cli import main
from repro.io import save_scenario
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms


@pytest.fixture
def scenario_file(two_switch_net, tmp_path):
    flow = Flow(
        name="video",
        spec=GmfSpec(
            min_separations=(ms(30),),
            deadlines=(ms(100),),
            jitters=(0.0,),
            payload_bits=(60_000,),
        ),
        route=("h0", "s0", "s1", "h2"),
        priority=5,
    )
    path = tmp_path / "scenario.json"
    save_scenario(path, two_switch_net, [flow])
    return str(path)


@pytest.fixture
def overloaded_file(two_switch_net, tmp_path):
    flows = [
        Flow(
            name=f"hog{i}",
            spec=GmfSpec(
                min_separations=(ms(20),),
                deadlines=(ms(100),),
                jitters=(0.0,),
                payload_bits=(1_500_000,),
            ),
            route=("h0", "s0", "s1", "h2") if i == 0 else ("h1", "s0", "s1", "h3"),
            priority=i,
        )
        for i in range(2)
    ]
    path = tmp_path / "overloaded.json"
    save_scenario(path, two_switch_net, flows)
    return str(path)


class TestAnalyze:
    def test_schedulable_exit_zero(self, scenario_file, capsys):
        assert main(["analyze", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "SCHEDULABLE" in out
        assert "video" in out

    def test_unschedulable_exit_one(self, overloaded_file, capsys):
        assert main(["analyze", overloaded_file]) == 1
        assert "NOT SCHEDULABLE" in capsys.readouterr().out

    def test_strict_flag(self, scenario_file, capsys):
        assert main(["analyze", scenario_file, "--strict"]) == 0


class TestSimulate:
    def test_runs_and_reports(self, scenario_file, capsys):
        assert main(["simulate", scenario_file, "-d", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "video" in out
        assert "deadline misses observed: 0" in out

    def test_rotation_mode(self, scenario_file, capsys):
        assert (
            main(["simulate", scenario_file, "-d", "0.3", "--mode", "rotation"])
            == 0
        )


class TestValidate:
    def test_no_violations(self, scenario_file, capsys):
        assert main(["validate", scenario_file, "-d", "0.3"]) == 0
        assert "violations: 0" in capsys.readouterr().out

    def test_diverged_analysis(self, overloaded_file, capsys):
        assert main(["validate", overloaded_file, "-d", "0.1"]) == 1


class TestReport:
    def test_lists_bottleneck(self, scenario_file, capsys):
        assert main(["report", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out

    def test_overload_flagged(self, overloaded_file, capsys):
        assert main(["report", overloaded_file]) == 1


class TestPlan:
    def test_already_schedulable(self, scenario_file, capsys):
        assert main(["plan", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "minimum uniform link-speed scale" in out

    def test_overloaded_needs_faster_links(self, overloaded_file, capsys):
        assert main(["plan", overloaded_file]) == 0
        out = capsys.readouterr().out
        # The required scale must be > 1 for the overloaded set.
        scale = float(out.split("schedulability:")[1].split()[0])
        assert scale > 1.0


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_file(self, tmp_path):
        bad = tmp_path / "nope.json"
        with pytest.raises(Exception):
            main(["analyze", str(bad)])
