"""ASCII table formatter."""

import pytest

from repro.util.tables import Table


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_title_rendered(self):
        t = Table(["x"], title="hello")
        assert t.render().splitlines()[0] == "hello"

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row([0.123456789])
        assert "0.123457" in t.render()

    def test_bool_formatting(self):
        t = Table(["ok"])
        t.add_row([True])
        t.add_row([False])
        body = t.render()
        assert "yes" in body and "no" in body

    def test_alignment_widths(self):
        t = Table(["col"])
        t.add_row(["a-very-long-cell"])
        lines = t.render().splitlines()
        header, row = lines[1], lines[3]
        assert len(header) == len(row)

    def test_str_matches_render(self):
        t = Table(["a"])
        t.add_row([1])
        assert str(t) == t.render()
