"""Switch-egress analysis (Sec. 3.4, Eqs. 28-35)."""

import math

import pytest

from repro.core.context import AnalysisContext, AnalysisOptions, link_resource
from repro.core.results import StageKind
from repro.core.switch_egress import egress_response_time, egress_utilization
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms


def make_flow(name="f", payload=10_000, period=ms(20), prio=3, route=("h0", "sw", "h2")):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(period,),
            deadlines=(ms(100),),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=prio,
    )


def ctx_with(net, flows, **opts):
    return AnalysisContext(net, flows, AnalysisOptions(**opts) if opts else None)


class TestSingleFlow:
    def test_includes_mft_blocking_and_circ(self, one_switch_net):
        """Alone: R = MFT + C + F*CIRC (blocking + wire + task slots)."""
        flow = make_flow(payload=10_000)
        ctx = ctx_with(one_switch_net, [flow])
        res = egress_response_time(ctx, flow, 0, "sw")
        dem = ctx.demand(flow, "sw", "h2")
        circ = one_switch_net.circ("sw")
        expected = dem.mft + dem.c[0] + dem.n_eth[0] * circ
        assert res.response == pytest.approx(expected)
        assert res.kind is StageKind.EGRESS
        assert res.resource == link_resource("sw", "h2")

    def test_strict_paper_omits_own_circ(self, one_switch_net):
        flow = make_flow(payload=10_000)
        ctx = ctx_with(one_switch_net, [flow], strict_paper=True)
        res = egress_response_time(ctx, flow, 0, "sw")
        dem = ctx.demand(flow, "sw", "h2")
        assert res.response == pytest.approx(dem.mft + dem.c[0])

    def test_propagation_added(self):
        from repro.model.network import Network

        net = Network()
        net.add_endhost("h0")
        net.add_switch("sw")
        net.add_endhost("h2")
        net.add_duplex_link("h0", "sw", speed_bps=mbps(100))
        net.add_duplex_link("sw", "h2", speed_bps=mbps(100), prop_delay=1e-4)
        flow = make_flow()
        with_prop = egress_response_time(ctx_with(net, [flow]), flow, 0, "sw")
        net2 = Network()
        net2.add_endhost("h0")
        net2.add_switch("sw")
        net2.add_endhost("h2")
        net2.add_duplex_link("h0", "sw", speed_bps=mbps(100))
        net2.add_duplex_link("sw", "h2", speed_bps=mbps(100))
        without = egress_response_time(ctx_with(net2, [flow]), flow, 0, "sw")
        assert with_prop.response - without.response == pytest.approx(1e-4)


class TestPriorities:
    def test_higher_priority_interferes(self, one_switch_net):
        a = make_flow("a", prio=3)
        hi = make_flow("hi", prio=8, route=("h1", "sw", "h2"))
        alone = egress_response_time(ctx_with(one_switch_net, [a]), a, 0, "sw")
        shared = egress_response_time(
            ctx_with(one_switch_net, [a, hi]), a, 0, "sw"
        )
        assert shared.response > alone.response

    def test_equal_priority_interferes(self, one_switch_net):
        """hep (Eq. 2) includes equal priorities."""
        a = make_flow("a", prio=3)
        eq = make_flow("eq", prio=3, route=("h1", "sw", "h2"))
        shared = egress_response_time(
            ctx_with(one_switch_net, [a, eq]), a, 0, "sw"
        )
        alone = egress_response_time(ctx_with(one_switch_net, [a]), a, 0, "sw")
        assert shared.response > alone.response

    def test_lower_priority_only_blocks_via_mft(self, one_switch_net):
        """A lower-priority flow adds nothing beyond the MFT already
        charged (non-preemptive blocking is one max frame)."""
        a = make_flow("a", prio=5)
        lo = make_flow("lo", prio=1, route=("h1", "sw", "h2"))
        alone = egress_response_time(ctx_with(one_switch_net, [a]), a, 0, "sw")
        shared = egress_response_time(
            ctx_with(one_switch_net, [a, lo]), a, 0, "sw"
        )
        assert shared.response == pytest.approx(alone.response)

    def test_per_link_priority_override_used(self, one_switch_net):
        a = make_flow("a", prio=5)
        # b is low priority by default but re-marked high on the egress link.
        b = Flow(
            name="b",
            spec=make_flow("x").spec,
            route=("h1", "sw", "h2"),
            priority=1,
            link_priorities={("sw", "h2"): 9},
        )
        shared = egress_response_time(
            ctx_with(one_switch_net, [a, b]), a, 0, "sw"
        )
        alone = egress_response_time(ctx_with(one_switch_net, [a]), a, 0, "sw")
        assert shared.response > alone.response


class TestUtilization:
    def test_includes_own_and_hep(self, one_switch_net):
        a = make_flow("a", prio=3)
        hi = make_flow("hi", prio=8, route=("h1", "sw", "h2"))
        lo = make_flow("lo", prio=0, route=("h1", "sw", "h2"))
        ctx = ctx_with(one_switch_net, [a, hi, lo])
        u = egress_utilization(ctx, a, "sw")
        da = ctx.demand(a, "sw", "h2").utilization
        dhi = ctx.demand(hi, "sw", "h2").utilization
        assert u == pytest.approx(da + dhi)

    def test_hep_overload_diverges(self, one_switch_net):
        a = make_flow("a", prio=1, payload=10_000)
        hog = make_flow("hog", prio=9, payload=2_500_000, period=ms(20),
                        route=("h1", "sw", "h2"))
        ctx = ctx_with(one_switch_net, [a, hog])
        assert egress_utilization(ctx, a, "sw") >= 1.0
        res = egress_response_time(ctx, a, 0, "sw")
        assert not res.converged
        assert math.isinf(res.response)

    def test_high_priority_unaffected_by_lp_overload(self, one_switch_net):
        """The hog is *lower* priority: the victim still converges
        (Eq. 35's per-flow condition)."""
        a = make_flow("a", prio=9, payload=10_000)
        hog = make_flow("hog", prio=1, payload=2_600_000, period=ms(25),
                        route=("h1", "sw", "h2"))
        ctx = ctx_with(one_switch_net, [a, hog])
        res = egress_response_time(ctx, a, 0, "sw")
        assert res.converged
        assert egress_utilization(ctx, a, "sw") < 1.0


class TestBusyPeriod:
    def test_seeded_with_mft(self, one_switch_net):
        flow = make_flow()
        ctx = ctx_with(one_switch_net, [flow])
        res = egress_response_time(ctx, flow, 0, "sw")
        assert res.busy_period >= ctx.demand(flow, "sw", "h2").mft

    def test_instances_at_least_one(self, one_switch_net):
        flow = make_flow()
        ctx = ctx_with(one_switch_net, [flow])
        res = egress_response_time(ctx, flow, 0, "sw")
        assert res.n_instances >= 1
