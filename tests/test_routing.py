"""Route validation and shortest-path routing."""

import pytest

from repro.model.network import Network
from repro.model.routing import (
    RouteError,
    hops,
    links_of_route,
    shortest_route,
    validate_route,
)
from repro.util.units import mbps


@pytest.fixture
def diamond_net() -> Network:
    """h0 -- sA/sB (two parallel switch paths) -- h1; plus a router."""
    net = Network()
    net.add_endhost("h0")
    net.add_endhost("h1")
    net.add_switch("sA")
    net.add_switch("sB")
    net.add_switch("sC")
    net.add_router("gw")
    net.add_duplex_link("h0", "sA", speed_bps=mbps(100))
    net.add_duplex_link("h0", "sB", speed_bps=mbps(10))
    net.add_duplex_link("sA", "sC", speed_bps=mbps(100), prop_delay=5e-6)
    net.add_duplex_link("sB", "sC", speed_bps=mbps(10), prop_delay=1e-6)
    net.add_duplex_link("sC", "h1", speed_bps=mbps(100))
    net.add_duplex_link("gw", "sC", speed_bps=mbps(100))
    return net


class TestValidateRoute:
    def test_valid_route(self, diamond_net):
        r = validate_route(diamond_net, ["h0", "sA", "sC", "h1"])
        assert r == ("h0", "sA", "sC", "h1")

    def test_too_short(self, diamond_net):
        with pytest.raises(RouteError, match="at least"):
            validate_route(diamond_net, ["h0"])

    def test_repeated_node(self, diamond_net):
        with pytest.raises(RouteError, match="twice"):
            validate_route(diamond_net, ["h0", "sA", "h0"])

    def test_unknown_node(self, diamond_net):
        with pytest.raises(RouteError, match="unknown"):
            validate_route(diamond_net, ["h0", "sX", "h1"])

    def test_missing_link(self, diamond_net):
        with pytest.raises(RouteError, match="missing link"):
            validate_route(diamond_net, ["h0", "sC", "h1"])

    def test_switch_endpoint_rejected(self, diamond_net):
        with pytest.raises(RouteError, match="end host or IP router"):
            validate_route(diamond_net, ["sA", "sC", "h1"])

    def test_intermediate_endhost_rejected(self):
        net = Network()
        net.add_endhost("a")
        net.add_endhost("b")
        net.add_endhost("c")
        net.add_duplex_link("a", "b", speed_bps=mbps(10))
        net.add_duplex_link("b", "c", speed_bps=mbps(10))
        with pytest.raises(RouteError, match="only traverse Ethernet switches"):
            validate_route(net, ["a", "b", "c"])

    def test_router_endpoint_allowed(self, diamond_net):
        r = validate_route(diamond_net, ["gw", "sC", "h1"])
        assert r[0] == "gw"

    def test_intermediate_router_rejected(self):
        net = Network()
        net.add_endhost("a")
        net.add_router("r")
        net.add_endhost("b")
        net.add_duplex_link("a", "r", speed_bps=mbps(10))
        net.add_duplex_link("r", "b", speed_bps=mbps(10))
        with pytest.raises(RouteError, match="only traverse Ethernet switches"):
            validate_route(net, ["a", "r", "b"])


class TestShortestRoute:
    def test_fewest_hops(self, diamond_net):
        r = shortest_route(diamond_net, "h0", "h1")
        assert r in (("h0", "sA", "sC", "h1"), ("h0", "sB", "sC", "h1"))

    def test_latency_weight_prefers_low_prop(self, diamond_net):
        r = shortest_route(diamond_net, "h0", "h1", weight="latency")
        assert r == ("h0", "sB", "sC", "h1")

    def test_transmission_weight_prefers_fast_links(self, diamond_net):
        r = shortest_route(diamond_net, "h0", "h1", weight="transmission")
        assert r == ("h0", "sA", "sC", "h1")

    def test_no_route_through_endhosts(self):
        net = Network()
        net.add_endhost("a")
        net.add_endhost("b")
        net.add_endhost("c")
        net.add_duplex_link("a", "b", speed_bps=mbps(10))
        net.add_duplex_link("b", "c", speed_bps=mbps(10))
        with pytest.raises(RouteError, match="no switch-only route"):
            shortest_route(net, "a", "c")

    def test_direct_link_route(self):
        net = Network()
        net.add_endhost("a")
        net.add_endhost("b")
        net.add_duplex_link("a", "b", speed_bps=mbps(10))
        assert shortest_route(net, "a", "b") == ("a", "b")

    def test_same_endpoint_rejected(self, diamond_net):
        with pytest.raises(RouteError):
            shortest_route(diamond_net, "h0", "h0")

    def test_unknown_weight_rejected(self, diamond_net):
        with pytest.raises(ValueError, match="unknown weight"):
            shortest_route(diamond_net, "h0", "h1", weight="zigzag")

    def test_router_as_destination(self, diamond_net):
        r = shortest_route(diamond_net, "h0", "gw")
        assert r[-1] == "gw"


class TestHelpers:
    def test_hops(self):
        assert hops(("a", "s", "b")) == 2

    def test_links_of_route(self):
        assert links_of_route(("a", "s", "b")) == [("a", "s"), ("s", "b")]
