"""Per-hop latency records and their agreement with per-stage bounds."""

import pytest

from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.sim.simulator import SimConfig, simulate
from repro.util.units import mbps, ms


def make_flow(route, payload=40_000, name="f"):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(ms(200),),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=5,
    )


class TestHopRecords:
    def test_every_route_node_stamped(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"))
        trace = simulate(two_switch_net, [flow], duration=0.2)
        p = trace.completed_packets("f")[0]
        assert set(p.node_arrivals) == {"s0", "s1", "h2"}

    def test_hop_times_monotone(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"))
        trace = simulate(two_switch_net, [flow], duration=0.2)
        for p in trace.completed_packets("f"):
            lat = p.hop_latencies(flow.route)
            values = [v for _, v in lat]
            assert values == sorted(values)
            assert all(v > 0 for v in values)

    def test_final_hop_equals_response(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"))
        trace = simulate(two_switch_net, [flow], duration=0.2)
        for p in trace.completed_packets("f"):
            lat = dict(p.hop_latencies(flow.route))
            assert lat["h2"] == pytest.approx(p.response)

    def test_multifragment_stamps_at_last_fragment(self, two_switch_net):
        """The stamp is the *last* fragment's arrival, not the first's."""
        flow = make_flow(("h0", "s0", "s1", "h2"), payload=120_000)
        trace = simulate(two_switch_net, [flow], duration=0.2)
        p = trace.completed_packets("f")[0]
        # The packet has 11 fragments; its s0 arrival must exceed the
        # single-fragment wire time by ~the serialisation of the rest.
        from repro.core.packetization import packetize

        pkt = packetize(120_000)
        full_wire = pkt.wire_bits / mbps(100)
        assert p.node_arrivals["s0"] - p.arrival >= full_wire - 1e-9


class TestPerStageAgreement:
    def test_cumulative_hops_within_cumulative_stage_bounds(self, two_switch_net):
        """Simulated cumulative latency at each switch must stay below
        the analysis' cumulative stage bound at the matching point."""
        flow = make_flow(("h0", "s0", "s1", "h2"))
        res = holistic_analysis(two_switch_net, [flow])
        frame = res.result("f").frame(0)
        # Cumulative bound after: first hop (arrival at s0), after
        # egress(s0,s1) (arrival at s1), after egress(s1,h2) (h2).
        stages = frame.stages
        cumulative = {}
        acc = flow.spec.jitters[0]
        for s in stages:
            acc += s.response
            if s.resource[0] == "link":
                cumulative[s.resource[2]] = acc
        trace = simulate(two_switch_net, [flow], duration=0.5)
        for p in trace.completed_packets("f"):
            for node, latency in p.hop_latencies(flow.route):
                assert latency <= cumulative[node] + 1e-9
