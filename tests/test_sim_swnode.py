"""Switch simulation dynamics: event and rotation drivers."""

import pytest

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network, SwitchConfig
from repro.sim.simulator import SimConfig, Simulator, simulate
from repro.util.units import mbps, ms, us


def tiny_net(c_route=us(2.7), c_send=us(1.0)):
    net = Network()
    net.add_endhost("h0")
    net.add_endhost("h1")
    net.add_switch("sw", SwitchConfig(c_route=c_route, c_send=c_send))
    net.add_duplex_link("h0", "sw", speed_bps=mbps(100))
    net.add_duplex_link("sw", "h1", speed_bps=mbps(100))
    return net


def one_packet_flow(payload=10_000):
    return Flow(
        name="f",
        spec=GmfSpec(
            min_separations=(1.0,),  # one packet per simulated second
            deadlines=(0.5,),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=("h0", "sw", "h1"),
    )


class TestEventDriver:
    def test_switch_processing_cost_visible(self):
        """Response includes at least CROUTE + CSEND of task time."""
        net = tiny_net()
        flow = one_packet_flow()
        trace = simulate(net, [flow], duration=0.5)
        from repro.core.packetization import packetize

        wire = 2 * packetize(10_000).wire_bits / mbps(100)
        r = trace.worst_response("f")
        assert r >= wire + us(2.7) + us(1.0) - 1e-12

    def test_slow_tasks_slow_forwarding(self):
        fast = simulate(tiny_net(), [one_packet_flow()], duration=0.5)
        slow_net = tiny_net(c_route=us(270), c_send=us(100))
        slow = simulate(slow_net, [one_packet_flow()], duration=0.5)
        assert slow.worst_response("f") > fast.worst_response("f")

    def test_idle_cost_mode(self):
        """Non-zero idle cost still delivers everything."""
        net = tiny_net()
        trace = simulate(
            net,
            [one_packet_flow()],
            config=SimConfig(duration=0.5, idle_cost=us(0.1)),
        )
        assert trace.count_completed() == 1

    def test_processor_sleeps_when_idle(self):
        """Event count stays small for a single packet (no busy spin)."""
        net = tiny_net()
        trace = simulate(net, [one_packet_flow()], duration=0.5)
        assert trace.events_processed < 100


class TestRotationDriver:
    def test_rotation_adds_alignment_delay(self):
        net = tiny_net()
        flow = one_packet_flow()
        ev = simulate(
            net, [flow], config=SimConfig(duration=0.5, switch_mode="event")
        ).worst_response("f")
        rot = simulate(
            net, [flow], config=SimConfig(duration=0.5, switch_mode="rotation")
        ).worst_response("f")
        assert rot >= ev
        # Alignment penalty is bounded by one CIRC per task service
        # (2 services for a single-fragment packet through one switch).
        circ = net.circ("sw")
        assert rot <= ev + 2 * circ + 1e-12

    def test_rotation_bounded_by_circ_per_fragment(self):
        """Multi-fragment packet: ingress delay <= F * CIRC + transmission."""
        net = tiny_net()
        flow = one_packet_flow(payload=50_000)  # 5 fragments
        trace = simulate(
            net, [flow], config=SimConfig(duration=0.5, switch_mode="rotation")
        )
        assert trace.count_completed() == 1

    def test_rotation_deterministic(self):
        net = tiny_net()
        flow = one_packet_flow(payload=30_000)
        t1 = simulate(net, [flow], config=SimConfig(duration=0.5, switch_mode="rotation"))
        t2 = simulate(net, [flow], config=SimConfig(duration=0.5, switch_mode="rotation"))
        assert t1.responses("f") == t2.responses("f")

    def test_rotation_under_load_drains(self, two_switch_net):
        flows = [
            Flow(
                name=f"f{i}",
                spec=GmfSpec(
                    min_separations=(ms(5),),
                    deadlines=(ms(100),),
                    jitters=(0.0,),
                    payload_bits=(40_000,),
                ),
                route=("h0", "s0", "s1", "h2") if i % 2 == 0 else ("h1", "s0", "s1", "h3"),
                priority=i,
            )
            for i in range(4)
        ]
        trace = simulate(
            two_switch_net, flows,
            config=SimConfig(duration=0.5, switch_mode="rotation"),
        )
        assert trace.count_incomplete() == 0


class TestMultiprocessorSwitch:
    def test_two_processor_switch_works(self):
        net = Network()
        net.add_endhost("h0")
        net.add_endhost("h1")
        net.add_switch("sw", SwitchConfig(n_processors=2))
        net.add_duplex_link("h0", "sw", speed_bps=mbps(100))
        net.add_duplex_link("sw", "h1", speed_bps=mbps(100))
        trace = simulate(net, [one_packet_flow()], duration=0.5)
        assert trace.count_completed() == 1

    def test_multiproc_faster_under_rotation(self):
        """Partitioning halves CIRC, shrinking rotation-mode delay."""
        def build(m):
            net = Network()
            net.add_endhost("h0")
            net.add_endhost("h1")
            net.add_endhost("h2")
            net.add_endhost("h3")
            net.add_switch("sw", SwitchConfig(n_processors=m,
                                              c_route=us(27), c_send=us(10)))
            for h in ("h0", "h1", "h2", "h3"):
                net.add_duplex_link(h, "sw", speed_bps=mbps(100))
            return net

        flow = one_packet_flow()
        r1 = simulate(
            build(1), [flow], config=SimConfig(duration=0.5, switch_mode="rotation")
        ).worst_response("f")
        r4 = simulate(
            build(4), [flow], config=SimConfig(duration=0.5, switch_mode="rotation")
        ).worst_response("f")
        assert r4 <= r1


class TestZeroCostSwitch:
    def test_rotation_rejects_zero_costs(self):
        net = tiny_net(c_route=0.0, c_send=0.0)
        with pytest.raises(ValueError, match="positive task costs"):
            simulate(
                net,
                [one_packet_flow()],
                config=SimConfig(duration=0.1, switch_mode="rotation"),
            )

    def test_event_mode_handles_zero_costs(self):
        """An idealised infinitely-fast switch still forwards correctly."""
        net = tiny_net(c_route=0.0, c_send=0.0)
        trace = simulate(net, [one_packet_flow()], duration=0.2)
        assert trace.count_completed() == 1
        # Response reduces to pure wire time of the two hops.
        from repro.core.packetization import packetize

        wire = 2 * packetize(10_000).wire_bits / mbps(100)
        assert trace.worst_response("f") == pytest.approx(wire)
