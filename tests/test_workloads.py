"""Workload generators: MPEG, VoIP, topologies, random flow sets."""

import pytest

from repro.core.context import AnalysisContext
from repro.model.gmf import GmfSpec
from repro.model.network import NodeKind
from repro.model.routing import validate_route
from repro.util.units import mbps, ms
from repro.workloads.generator import RandomFlowConfig, random_flow_set, uunifast
from repro.workloads.mpeg import (
    MpegGopPattern,
    mpeg_gop_spec,
    paper_fig3_flow,
    paper_fig3_pattern,
    paper_fig3_spec,
)
from repro.workloads.topologies import (
    line_network,
    paper_fig1_network,
    star_network,
    tree_network,
)
from repro.workloads.voip import CODECS, voip_flow, voip_spec

import numpy as np


class TestMpeg:
    def test_paper_pattern_nine_frames(self):
        """Fig. 3: ni = 9 ('there are 9 frames and then it repeats')."""
        assert len(paper_fig3_pattern().pattern) == 9

    def test_paper_tsum_270ms(self):
        """The recoverable Fig. 4 value: TSUM = 270 ms."""
        assert paper_fig3_spec().tsum == pytest.approx(0.270)

    def test_first_frame_is_i_plus_p(self):
        spec = paper_fig3_spec()
        gop = paper_fig3_pattern()
        assert spec.payload_bits[0] == gop.i_bits + gop.p_bits

    def test_frame_size_ordering(self):
        """I+P > P > B (the heterogeneity GMF captures)."""
        spec = paper_fig3_spec()
        sizes = set(spec.payload_bits)
        assert len(sizes) == 3
        assert spec.payload_bits[0] > spec.payload_bits[3] > spec.payload_bits[1]

    def test_custom_pattern(self):
        gop = MpegGopPattern(pattern="IPB", frame_time=ms(40))
        spec = mpeg_gop_spec(gop, deadline=ms(200))
        assert spec.n_frames == 3
        assert spec.tsum == pytest.approx(0.120)

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError):
            MpegGopPattern(pattern="IQZ", frame_time=ms(30))

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            MpegGopPattern(pattern="", frame_time=ms(30))

    def test_flow_constructor(self):
        flow = paper_fig3_flow(("n0", "n4", "n6", "n3"))
        assert flow.route == ("n0", "n4", "n6", "n3")
        assert flow.spec.n_frames == 9


class TestVoip:
    def test_g711_bitrate(self):
        """G.711: 160 bytes / 20 ms = 64 kbit/s of voice payload."""
        spec = voip_spec(codec="g711")
        assert spec.payload_bits[0] / spec.tsum == pytest.approx(64_000)

    def test_single_frame(self):
        assert voip_spec().n_frames == 1

    def test_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown codec"):
            voip_spec(codec="opus")

    def test_all_codecs_valid(self):
        for codec in CODECS:
            spec = voip_spec(codec=codec)
            assert spec.tsum > 0

    def test_flow_uses_rtp_by_default(self):
        from repro.model.flow import Transport

        flow = voip_flow(("h0", "sw", "h1"), name="c")
        assert flow.transport is Transport.RTP


class TestTopologies:
    def test_fig1_structure(self):
        net = paper_fig1_network()
        kinds = {n.name: n.kind for n in net.nodes()}
        assert kinds["n0"] is NodeKind.ENDHOST
        assert kinds["n4"] is NodeKind.SWITCH
        assert kinds["n7"] is NodeKind.ROUTER
        # The Fig. 2 route exists.
        validate_route(net, ("n0", "n4", "n6", "n3"))

    def test_fig1_default_speed_matches_worked_example(self):
        net = paper_fig1_network()
        assert net.linkspeed("n0", "n4") == 1e7

    def test_line_network(self):
        net = line_network(3, hosts_per_switch=2)
        validate_route(net, ("h0_0", "sw0", "sw1", "sw2", "h2_1"))

    def test_line_needs_one_switch(self):
        with pytest.raises(ValueError):
            line_network(0)

    def test_star_network(self):
        net = star_network(4)
        validate_route(net, ("h0", "sw", "h3"))
        assert net.n_interfaces("sw") == 4

    def test_star_needs_two_hosts(self):
        with pytest.raises(ValueError):
            star_network(1)

    def test_tree_network(self):
        net = tree_network(depth=2, fanout=2, hosts_per_leaf=2)
        switches = [n.name for n in net.nodes() if n.is_switch]
        assert "sw" in switches and "sw0" in switches and "sw1" in switches
        validate_route(net, ("hsw0_0", "sw0", "sw", "sw1", "hsw1_1"))

    def test_tree_has_router_uplink(self):
        net = tree_network(depth=1)
        assert net.node("gw").kind is NodeKind.ROUTER


class TestUUniFast:
    def test_sums_to_total(self):
        rng = np.random.default_rng(0)
        utils = uunifast(rng, 8, 0.7)
        assert sum(utils) == pytest.approx(0.7)

    def test_all_nonnegative(self):
        rng = np.random.default_rng(1)
        assert all(u >= 0 for u in uunifast(rng, 20, 0.9))

    def test_single_task(self):
        rng = np.random.default_rng(2)
        assert uunifast(rng, 1, 0.5) == [0.5]

    def test_invalid_args(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            uunifast(rng, 0, 0.5)
        with pytest.raises(ValueError):
            uunifast(rng, 3, -0.1)


class TestRandomFlowSet:
    def test_reproducible(self, two_switch_net):
        a = random_flow_set(two_switch_net, n_flows=4, total_utilization=0.4, seed=7)
        b = random_flow_set(two_switch_net, n_flows=4, total_utilization=0.4, seed=7)
        assert [f.name for f in a] == [f.name for f in b]
        assert [f.spec for f in a] == [f.spec for f in b]

    def test_routes_valid(self, two_switch_net):
        flows = random_flow_set(
            two_switch_net, n_flows=6, total_utilization=0.5, seed=3
        )
        for f in flows:
            validate_route(two_switch_net, f.route)

    def test_utilization_close_to_target(self, two_switch_net):
        """Summed per-flow utilisation on each flow's slowest link is
        close to (and not above) the requested total."""
        target = 0.5
        flows = random_flow_set(
            two_switch_net, n_flows=5, total_utilization=target, seed=11
        )
        ctx = AnalysisContext(two_switch_net, flows)
        total = 0.0
        for f in flows:
            slowest = min(
                two_switch_net.linkspeed(a, b) for a, b in f.links()
            )
            link = next(
                (a, b)
                for a, b in f.links()
                if two_switch_net.linkspeed(a, b) == slowest
            )
            total += ctx.demand(f, *link).utilization
        assert total <= target + 0.01
        assert total >= 0.5 * target  # quantisation can only lose so much

    def test_burstiness_respected(self, two_switch_net):
        cfg = RandomFlowConfig(n_frames_range=(4, 4), burstiness=8.0)
        flows = random_flow_set(
            two_switch_net, n_flows=3, total_utilization=0.3, seed=5, config=cfg
        )
        for f in flows:
            if max(f.spec.payload_bits) > 1000:  # skip floor-clamped flows
                ratio = max(f.spec.payload_bits) / min(f.spec.payload_bits)
                assert ratio > 2.0

    def test_priorities_in_range(self, two_switch_net):
        cfg = RandomFlowConfig(priority_levels=4)
        flows = random_flow_set(
            two_switch_net, n_flows=10, total_utilization=0.3, seed=9, config=cfg
        )
        assert all(0 <= f.priority < 4 for f in flows)
