"""Routes starting or ending at IP routers (paper Sec. 2.1).

"The source node of a flow is either an IP-endhost or an IP-router":
traffic entering the managed network from the wider Internet is analysed
with the router as its source.  These tests cover that path through the
analysis, the simulator and their agreement.
"""

import pytest

from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.sim.simulator import simulate
from repro.util.units import mbps, ms
from repro.workloads.topologies import paper_fig1_network


def inbound_flow(payload=40_000, name="inbound"):
    """Internet -> n7 (router) -> n6 -> n3 (end host)."""
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(ms(150),),
            jitters=(ms(2),),
            payload_bits=(payload,),
        ),
        route=("n7", "n6", "n3"),
        priority=4,
    )


def outbound_flow(name="outbound"):
    """n0 (end host) -> n4 -> n6 -> n7 (router, to the Internet)."""
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(ms(150),),
            jitters=(0.0,),
            payload_bits=(20_000,),
        ),
        route=("n0", "n4", "n6", "n7"),
        priority=4,
    )


@pytest.fixture
def net():
    return paper_fig1_network(speed_bps=mbps(100))


class TestAnalysis:
    def test_router_source_analysable(self, net):
        res = holistic_analysis(net, [inbound_flow()])
        assert res.schedulable

    def test_router_destination_analysable(self, net):
        res = holistic_analysis(net, [outbound_flow()])
        assert res.schedulable

    def test_bidirectional_mix(self, net):
        res = holistic_analysis(net, [inbound_flow(), outbound_flow()])
        assert res.schedulable
        assert set(res.flow_results) == {"inbound", "outbound"}

    def test_router_first_hop_is_first_stage(self, net):
        """The router's output queue is the flow's first hop — analysed
        with the any-work-conserving assumption like an end host."""
        from repro.core.results import StageKind

        res = holistic_analysis(net, [inbound_flow()])
        stages = res.result("inbound").frame(0).stages
        assert stages[0].kind is StageKind.FIRST_HOP
        assert stages[0].resource == ("link", "n7", "n6")


class TestSimulation:
    def test_router_source_simulated(self, net):
        trace = simulate(net, [inbound_flow()], duration=0.5)
        assert trace.count_completed("inbound") > 0
        assert trace.count_incomplete() == 0

    def test_bounds_hold_for_router_traffic(self, net):
        flows = [inbound_flow(), outbound_flow()]
        res = holistic_analysis(net, flows)
        trace = simulate(net, flows, duration=1.0)
        for f in flows:
            assert trace.worst_response(f.name) <= res.response(f.name) + 1e-9
