"""Network model: nodes, links, NINTERFACES, CIRC."""

import pytest

from repro.model.network import Link, Network, Node, NodeKind, SwitchConfig
from repro.util.units import mbps, us


class TestSwitchConfig:
    def test_paper_circ_example(self):
        """Sec. 3.3: 4 interfaces * (2.7 + 1.0) us = 14.8 us."""
        cfg = SwitchConfig()
        assert cfg.circ(4) == pytest.approx(14.8e-6)

    def test_conclusions_48_port_16_cpu(self):
        """Conclusions: 48 ports / 16 cpus -> CIRC = 11.1 us."""
        cfg = SwitchConfig(n_processors=16)
        assert cfg.circ(48) == pytest.approx(11.1e-6)

    def test_indivisible_interfaces_rejected(self):
        cfg = SwitchConfig(n_processors=3)
        with pytest.raises(ValueError, match="divisible"):
            cfg.circ(4)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            SwitchConfig(c_route=-1e-6)

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            SwitchConfig(n_processors=0)

    def test_zero_interfaces_rejected(self):
        with pytest.raises(ValueError):
            SwitchConfig().circ(0)


class TestNode:
    def test_switch_gets_default_config(self):
        n = Node("s", NodeKind.SWITCH)
        assert n.switch is not None
        assert n.is_switch

    def test_endhost_with_switch_config_rejected(self):
        with pytest.raises(ValueError):
            Node("h", NodeKind.ENDHOST, switch=SwitchConfig())


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "a", speed_bps=1e6)

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", speed_bps=0)

    def test_negative_prop_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", speed_bps=1e6, prop_delay=-1.0)


class TestNetwork:
    def test_duplicate_node_rejected(self, one_switch_net):
        with pytest.raises(ValueError, match="duplicate"):
            one_switch_net.add_endhost("h0")

    def test_duplicate_link_rejected(self, one_switch_net):
        with pytest.raises(ValueError, match="duplicate link"):
            one_switch_net.add_link("h0", "sw", speed_bps=mbps(10))

    def test_link_to_unknown_node_rejected(self, one_switch_net):
        with pytest.raises(KeyError):
            one_switch_net.add_link("h0", "nope", speed_bps=mbps(10))

    def test_linkspeed_query(self, one_switch_net):
        assert one_switch_net.linkspeed("h0", "sw") == mbps(100)

    def test_prop_query_default_zero(self, one_switch_net):
        assert one_switch_net.prop("h0", "sw") == 0.0

    def test_missing_link_raises(self, one_switch_net):
        with pytest.raises(KeyError, match="no link"):
            one_switch_net.link("h0", "h1")

    def test_unknown_node_raises(self, one_switch_net):
        with pytest.raises(KeyError, match="unknown node"):
            one_switch_net.node("ghost")

    def test_neighbors(self, one_switch_net):
        assert one_switch_net.neighbors("sw") == {"h0", "h1", "h2"}

    def test_n_interfaces_duplex(self, one_switch_net):
        assert one_switch_net.n_interfaces("sw") == 3

    def test_n_interfaces_counts_incoming_only_links(self):
        net = Network()
        net.add_switch("sw")
        net.add_endhost("h")
        net.add_link("h", "sw", speed_bps=mbps(10))  # simplex into sw
        assert net.n_interfaces("sw") == 1

    def test_circ_for_switch(self, one_switch_net):
        # 3 interfaces * 3.7 us
        assert one_switch_net.circ("sw") == pytest.approx(3 * 3.7e-6)

    def test_circ_for_endhost_rejected(self, one_switch_net):
        with pytest.raises(ValueError, match="not a switch"):
            one_switch_net.circ("h0")

    def test_describe_lists_everything(self, one_switch_net):
        text = one_switch_net.describe()
        assert "sw [switch]" in text
        assert "h0 -> sw" in text

    def test_has_helpers(self, one_switch_net):
        assert one_switch_net.has_node("h0")
        assert not one_switch_net.has_node("zz")
        assert one_switch_net.has_link("h0", "sw")
        assert not one_switch_net.has_link("h0", "h1")
