"""Cross-cutting analysis invariants (property-style).

* rotation invariance: the GMF cycle has no distinguished origin, so
  rotating a flow's frame numbering permutes per-frame bounds without
  changing them;
* monotonicity: bounds never improve when payloads, jitters or
  interference grow;
* determinism and cache-independence of the context.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import AnalysisContext, AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms


def video_flow(route, name="v", jitters=(ms(1),) * 3, payloads=(120_000, 40_000, 40_000)):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(30),) * 3,
            deadlines=(ms(200),) * 3,
            jitters=jitters,
            payload_bits=payloads,
        ),
        route=route,
        priority=5,
    )


class TestRotationInvariance:
    @pytest.mark.parametrize("offset", [1, 2])
    def test_single_flow_rotation(self, two_switch_net, offset):
        base = video_flow(("h0", "s0", "s1", "h2"))
        rotated = base.with_spec(base.spec.rotate(offset))
        r_base = holistic_analysis(two_switch_net, [base])
        r_rot = holistic_analysis(two_switch_net, [rotated])
        n = base.spec.n_frames
        for k in range(n):
            assert r_rot.response("v", k) == pytest.approx(
                r_base.response("v", (k + offset) % n)
            )

    def test_interferer_rotation_leaves_victim_bound(self, two_switch_net):
        """Interference terms (MX/NX/extra) are rotation-invariant, so
        rotating a *competitor* cannot change the victim's bound."""
        victim = video_flow(("h0", "s0", "s1", "h2"), "victim")
        comp = video_flow(("h1", "s0", "s1", "h3"), "comp")
        r1 = holistic_analysis(two_switch_net, [victim, comp])
        r2 = holistic_analysis(
            two_switch_net, [victim, comp.with_spec(comp.spec.rotate(1))]
        )
        assert r2.response("victim") == pytest.approx(r1.response("victim"))


class TestMonotonicity:
    def test_bound_monotone_in_payload(self, two_switch_net):
        small = video_flow(("h0", "s0", "s1", "h2"), payloads=(60_000, 20_000, 20_000))
        large = video_flow(("h0", "s0", "s1", "h2"), payloads=(120_000, 40_000, 40_000))
        r_small = holistic_analysis(two_switch_net, [small]).response("v")
        r_large = holistic_analysis(two_switch_net, [large]).response("v")
        assert r_large > r_small

    def test_bound_monotone_in_own_jitter(self, two_switch_net):
        calm = video_flow(("h0", "s0", "s1", "h2"), jitters=(0.0,) * 3)
        jittery = video_flow(("h0", "s0", "s1", "h2"), jitters=(ms(5),) * 3)
        r_calm = holistic_analysis(two_switch_net, [calm]).response("v")
        r_jit = holistic_analysis(two_switch_net, [jittery]).response("v")
        assert r_jit >= r_calm + ms(5) - 1e-12  # at least the RSUM term

    def test_bound_monotone_in_interferer_count(self, two_switch_net):
        victim = video_flow(("h0", "s0", "s1", "h2"), "victim")
        bounds = []
        competitors = []
        for i in range(3):
            res = holistic_analysis(
                two_switch_net, [victim, *competitors]
            )
            bounds.append(res.response("victim"))
            competitors.append(
                video_flow(("h1", "s0", "s1", "h3"), f"c{i}").with_priority(9)
            )
        assert bounds[0] <= bounds[1] <= bounds[2]
        assert bounds[2] > bounds[0]

    @pytest.mark.parametrize("extra_priority", [-3, -1, 0, 1, 3])
    def test_bound_antitone_in_priority(self, two_switch_net, extra_priority):
        """Raising the victim's priority never hurts it."""
        victim = video_flow(("h0", "s0", "s1", "h2"), "victim")
        comp = video_flow(("h1", "s0", "s1", "h3"), "comp")  # prio 5
        lo = holistic_analysis(
            two_switch_net, [victim.with_priority(5), comp]
        ).response("victim")
        hi = holistic_analysis(
            two_switch_net, [victim.with_priority(5 + abs(extra_priority)), comp]
        ).response("victim")
        assert hi <= lo + 1e-12


class TestContextHygiene:
    def test_fresh_contexts_identical(self, two_switch_net):
        flow = video_flow(("h0", "s0", "s1", "h2"))
        r1 = holistic_analysis(two_switch_net, [flow]).response("v")
        r2 = holistic_analysis(two_switch_net, [flow]).response("v")
        assert r1 == r2

    def test_with_flows_resets_jitters(self, two_switch_net):
        """Reusing a network across analyses must not leak jitter state."""
        flow = video_flow(("h0", "s0", "s1", "h2"))
        ctx = AnalysisContext(two_switch_net, [flow])
        holistic_analysis(two_switch_net, [flow], context=ctx)
        fresh = ctx.with_flows([flow])
        assert fresh.jitters.snapshot() == {}

    def test_demand_cache_consistency(self, two_switch_net):
        flow = video_flow(("h0", "s0", "s1", "h2"))
        ctx = AnalysisContext(two_switch_net, [flow])
        d1 = ctx.demand(flow, "s0", "s1")
        d2 = ctx.demand(flow, "s0", "s1")
        assert d1 is d2

    def test_strict_option_changes_packetization(self, two_switch_net):
        flow = video_flow(("h0", "s0", "s1", "h2"))
        loose = AnalysisContext(two_switch_net, [flow])
        strict = AnalysisContext(
            two_switch_net, [flow], AnalysisOptions(strict_paper=True)
        )
        assert (
            strict.demand(flow, "s0", "s1").csum
            <= loose.demand(flow, "s0", "s1").csum
        )
