"""Fault tolerance: supervised recovery, fault injection, retry stack.

The contract under test is the ISSUE-7 acceptance bar: with a seeded
`FaultPlan` killing shard workers mid-trace, the supervised service's
decisions, final state document and query responses are byte-identical
to the same trace with no faults — and the client-side retry path
(reconnect, backoff, idempotency keys) preserves that parity over TCP
even when the server drops connections.
"""

import asyncio
import json
import time

import pytest

from repro.service import (
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_OVERLOADED,
    ERR_UNAVAILABLE,
    RETRYABLE_CODES,
    AdmissionServer,
    FaultPlan,
    FaultSpec,
    ProtocolError,
    Request,
    RetryPolicy,
    ShardedAdmissionService,
    connect_with_backoff,
    is_retryable,
    replay_over_tcp,
    replay_serial,
    replay_service,
    request_from_dict,
    request_to_dict,
    response_to_dict,
    service_state_to_dict,
    trace_from_scenario,
)
from repro.service.faults import FaultError, WorkerFaults
from test_service import call_flow, saturating_scenario, two_star_scenario


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_round_trip(self):
        spec = "kill:shard=1,at=40;slow_batch:shard=0,at=10,delay=0.02;" \
               "drop_conn:at=120;seed=7"
        plan = FaultPlan.parse(spec)
        assert plan.seed == 7
        assert len(plan.faults) == 3
        assert plan == FaultPlan.from_dict(plan.to_dict())
        assert json.dumps(plan.to_dict())  # JSON-able

    def test_parse_blank_is_none(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("  ; ;") is None

    def test_filtering_by_shard_and_incarnation(self):
        plan = FaultPlan.parse(
            "kill:shard=0,at=1;kill:shard=1,at=2;"
            "kill:shard=1,at=3,incarnation=1;drop_conn:at=9"
        )
        assert {f.at for f in plan.worker_faults(shard=1)} == {2, 3}
        assert {f.at for f in plan.worker_faults(shard=1, incarnation=0)} == {2}
        assert {f.at for f in plan.worker_faults(shard=1, incarnation=1)} == {3}
        assert [f.kind for f in plan.server_faults()] == ["drop_conn"]

    def test_validation(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultPlan.parse("explode:at=1")
        with pytest.raises(FaultError, match="needs shard"):
            FaultPlan.parse("kill:at=1")
        with pytest.raises(FaultError, match="delay"):
            FaultPlan.parse("slow_batch:shard=0,at=1")
        with pytest.raises(FaultError, match="key=value"):
            FaultPlan.parse("kill:shard")
        with pytest.raises(FaultError, match="unknown key"):
            FaultPlan.parse("kill:shard=0,when=now")

    def test_worker_faults_indexed_by_op(self):
        wf = WorkerFaults([FaultSpec(kind="slow_batch", shard=0, at=2,
                                     delay_s=0.01)])
        assert bool(wf)
        start = time.perf_counter()
        wf.before_op(0)
        wf.before_op(1)
        assert time.perf_counter() - start < 0.01
        wf.before_op(2)
        assert time.perf_counter() - start >= 0.01

    def test_worker_faults_require_workers(self):
        sc = saturating_scenario()
        with pytest.raises(ValueError, match="workers=True"):
            ShardedAdmissionService(
                sc.network, fault_plan=FaultPlan.parse("kill:shard=0,at=0")
            )


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_deterministic_and_bounded(self):
        p = RetryPolicy(attempts=6, base_s=0.05, max_s=0.4, jitter=0.5,
                        seed=3)
        assert p.delays("k") == p.delays("k")
        assert p.delays("k") != p.delays("other-key")
        for attempt, delay in enumerate(p.delays("k")):
            cap = min(0.4, 0.05 * 2.0 ** attempt)
            assert cap * 0.5 <= delay <= cap

    def test_no_jitter_is_pure_exponential(self):
        p = RetryPolicy(attempts=4, base_s=0.1, max_s=1.0, jitter=0.0)
        assert p.delays() == (0.1, 0.2, 0.4, 0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_connect_backoff_gives_up_at_timeout(self):
        async def run():
            start = time.monotonic()
            with pytest.raises(OSError):
                # Port 1 on localhost: nothing listens, connects are
                # refused instantly, so the loop is pure backoff.
                await connect_with_backoff(
                    "127.0.0.1", 1, timeout=0.3,
                    policy=RetryPolicy(base_s=0.02, max_s=0.1),
                )
            return time.monotonic() - start

        elapsed = asyncio.run(run())
        assert 0.2 <= elapsed < 5.0


# ----------------------------------------------------------------------
# Protocol v2 surface
# ----------------------------------------------------------------------
class TestProtocolV2:
    def test_health_op_round_trip(self):
        req = request_from_dict({"v": 2, "id": 1, "op": "health"})
        assert req.op == "health"

    def test_v1_requests_still_accepted(self):
        req = request_from_dict({"v": 1, "id": 1, "op": "stats"})
        assert req.op == "stats"

    def test_idem_and_deadline_round_trip(self):
        req = Request(op="release", flow_name="f", idem="k#1",
                      deadline_s=0.25)
        back = request_from_dict(request_to_dict(req))
        assert back.idem == "k#1" and back.deadline_s == 0.25

    def test_negative_deadline_refused(self):
        with pytest.raises(ProtocolError, match="deadline"):
            Request(op="stats", deadline_s=-1.0)

    def test_is_retryable_taxonomy(self):
        for code in RETRYABLE_CODES:
            doc = response_to_dict(1, ok=False, error="x", code=code)
            assert is_retryable(doc)
        fatal = response_to_dict(1, ok=False, error="x",
                                 code=ERR_BAD_REQUEST)
        assert not is_retryable(fatal)
        assert not is_retryable(response_to_dict(1, {"accepted": True}))
        shed = response_to_dict(1, ok=False, error="x", code=ERR_OVERLOADED,
                                retry_after=0.05)
        assert shed["retry_after"] == 0.05


# ----------------------------------------------------------------------
# Supervised recovery (in-process)
# ----------------------------------------------------------------------
def _two_star_service(**kwargs):
    sc = two_star_scenario()
    svc = ShardedAdmissionService(
        sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
        workers=True, **kwargs,
    )
    return sc, svc


class TestSupervisedRecovery:
    def test_kill_mid_trace_recovers_byte_identical(self):
        # The acceptance bar: decisions, queries and the exported state
        # document of a faulted run equal the fault-free run's exactly.
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=40, arrival="burst", burst_size=8, hold=10,
            seed=2,
        )

        def run(plan):
            with ShardedAdmissionService(
                sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
                workers=True, fault_plan=plan, journal_limit=8,
            ) as svc:
                summary = replay_service(svc, trace, batch=8)
                queries = [
                    svc.query(name) for name in sorted(svc.admitted_names)
                ]
                doc = service_state_to_dict(svc)
                health = svc.health()
            return summary, queries, doc, health

        clean, clean_q, clean_doc, clean_h = run(None)
        plan = FaultPlan.parse("kill:shard=0,at=5;kill:shard=1,at=7")
        faulted, faulted_q, faulted_doc, faulted_h = run(plan)

        assert clean_h["restarts"] == 0
        assert faulted_h["restarts"] == 2, "both kills must have fired"
        assert faulted_h["status"] == "ok"
        assert faulted.admit_decisions == clean.admit_decisions
        assert faulted.errors == clean.errors
        assert faulted_q == clean_q
        assert faulted_doc == clean_doc  # byte-identical snapshot
        assert json.dumps(faulted_doc, sort_keys=True) == json.dumps(
            clean_doc, sort_keys=True
        )
        assert faulted_h["recovery_s_total"] > 0.0

    def test_journal_compaction_keeps_parity(self):
        # journal_limit=2 forces many compactions; a late kill then
        # recovers from baseline+short-journal, not a full replay.
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=30, arrival="poisson", rate=500, hold=6, seed=4
        )
        plan = FaultPlan.parse("kill:shard=0,at=9;kill:shard=1,at=9")
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
            workers=True, journal_limit=2, fault_plan=plan,
        ) as svc:
            faulted = replay_service(svc, trace, batch=4)
            for shard_h in svc.health()["shards"]:
                assert shard_h["journal_len"] <= 2
        serial = replay_serial(sc.network, trace, sc.options)
        assert faulted.admit_decisions == serial.admit_decisions

    def test_restart_budget_exhaustion_degrades_with_code(self):
        # A fault that re-fires in every incarnation burns the whole
        # restart budget; the shard must then degrade exactly like the
        # unsupervised path, with a retryable error code.
        sc, svc = _two_star_service(
            max_restarts=2,
            fault_plan=FaultPlan(
                faults=tuple(
                    FaultSpec(kind="kill", shard=0, at=0, incarnation=inc)
                    for inc in range(3)
                )
            ),
        )
        try:
            payload = svc.process_batch(
                [Request(op="admit",
                         flow=call_flow("a", ("sw0_a", "sw0", "sw0_b")))]
            )[0]
            assert payload["code"] == ERR_UNAVAILABLE
            health = svc.health()
            assert health["status"] == "degraded"
            assert health["dead_shards"] == [0]
            assert health["restarts"] == 2
            # The other shard still serves.
            assert svc.process_batch(
                [Request(op="admit",
                         flow=call_flow("b", ("sw1_w", "sw1", "sw1_x")))]
            )[0]["accepted"]
        finally:
            svc.close()

    def test_op_timeout_recovers_from_wedged_worker(self):
        # A hang fault leaves the worker alive but unresponsive; the
        # op timeout must convert that into a recovery, not a stall.
        sc, svc = _two_star_service(
            op_timeout=0.5,
            fault_plan=FaultPlan.parse("hang:shard=0,at=1"),
        )
        try:
            flows = [call_flow(f"a{i}", ("sw0_a", "sw0", "sw0_b"))
                     for i in range(3)]
            start = time.monotonic()
            payloads = svc.process_batch(
                [Request(op="admit", flow=f) for f in flows]
            )
            assert time.monotonic() - start < 10.0
            assert [p.get("accepted") for p in payloads] == [
                True, True, False
            ]  # same as a fault-free saturating run on one 10 Mbit star
            assert svc.health()["restarts"] == 1
        finally:
            svc.close()

    def test_wedged_worker_cannot_hang_close(self):
        # Satellite: close() must escalate terminate/kill instead of
        # blocking forever on a worker stuck mid-op.
        sc, svc = _two_star_service(
            close_timeout=0.5,
            supervise=False,
            fault_plan=FaultPlan.parse("hang:shard=0,at=0"),
        )
        shard = svc._shards[0]
        shard.send_batch(
            [("request", call_flow("a", ("sw0_a", "sw0", "sw0_b")))]
        )
        time.sleep(0.2)  # let the worker reach the hang
        assert shard._proc.is_alive()
        start = time.monotonic()
        svc.close()
        assert time.monotonic() - start < 5.0
        assert not shard._proc.is_alive()

    def test_explicit_restore_resets_recovery_recipe(self):
        # After import_shard_states, a crash must recover to the
        # *restored* state, not replay pre-restore history.
        sc = two_star_scenario()
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
            workers=True,
        ) as donor:
            assert donor.admit(
                call_flow("keep", ("sw0_a", "sw0", "sw0_b"))
            ).accepted
            states = donor.export_shard_states()
            flow_shards = donor.flow_assignment()
        sc2, svc = _two_star_service()
        try:
            assert svc.admit(
                call_flow("gone", ("sw0_c", "sw0", "sw0_d"))
            ).accepted
            svc.import_shard_states(states, flow_shards)
            svc._shards[0]._proc.terminate()
            q = svc.query("keep")
            assert q["admitted"] is True
            inline_names = {f.name for f in states[0][0]}
            assert "gone" not in inline_names
            assert "gone" not in svc.admitted_names
        finally:
            svc.close()


# ----------------------------------------------------------------------
# TCP end-to-end
# ----------------------------------------------------------------------
async def _serve(svc, **server_kwargs):
    server = AdmissionServer(svc, port=0, **server_kwargs)
    await server.start()
    return server


class TestTcpFaults:
    def test_dead_worker_degrades_over_tcp(self):
        # Satellite: the dead-worker degradation path end-to-end over
        # TCP — ordered, coded error responses; healthy shard serves.
        sc = two_star_scenario()

        async def run():
            svc = ShardedAdmissionService(
                sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
                workers=True, supervise=False,
            )
            server = await _serve(svc)
            try:
                svc._shards[1]._proc.terminate()
                svc._shards[1]._proc.join(timeout=5.0)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                from repro.service import encode_line

                reqs = [
                    Request(op="admit", id=0,
                            flow=call_flow("a", ("sw0_a", "sw0", "sw0_b"))),
                    Request(op="admit", id=1,
                            flow=call_flow("b", ("sw1_w", "sw1", "sw1_x"))),
                    Request(op="health", id=2),
                ]
                for req in reqs:
                    writer.write(encode_line(request_to_dict(req)))
                await writer.drain()
                docs = [
                    json.loads(await reader.readline()) for _ in reqs
                ]
                writer.close()
                await writer.wait_closed()
                return docs
            finally:
                await server.stop()
                svc.close()

        ok_doc, dead_doc, health_doc = asyncio.run(run())
        assert [d["id"] for d in (ok_doc, dead_doc, health_doc)] == [0, 1, 2]
        assert ok_doc["ok"] and ok_doc["accepted"]
        assert not dead_doc["ok"]
        assert dead_doc["code"] == ERR_UNAVAILABLE
        assert is_retryable(dead_doc)
        assert health_doc["status"] == "degraded"
        assert health_doc["dead_shards"] == [1]
        assert health_doc["server"]["queue_depth"] == 0

    def test_chaos_replay_with_retries_matches_serial(self):
        # The headline e2e: worker kills + dropped connections, client
        # retries with idempotency keys -> decisions identical to a
        # serial, fault-free controller.
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=40, arrival="burst", burst_size=8, hold=10,
            seed=2,
        )
        serial = replay_serial(sc.network, trace, sc.options)
        plan = FaultPlan.parse(
            "kill:shard=0,at=5;kill:shard=1,at=7;drop_conn:at=11"
        )

        async def run():
            svc = ShardedAdmissionService(
                sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
                workers=True, fault_plan=plan,
            )
            server = await _serve(svc, fault_plan=plan)
            try:
                summary = await replay_over_tcp(
                    "127.0.0.1", server.port, trace, window=8,
                    retry=RetryPolicy(attempts=5, base_s=0.01, seed=1),
                    request_timeout=30.0,
                )
                return summary, server.conns_dropped, svc.health()
            finally:
                await server.stop()
                svc.close()

        summary, dropped, health = asyncio.run(run())
        assert dropped == 1, "the drop_conn fault must have fired"
        assert health["restarts"] == 2, "both kills must have fired"
        assert summary.retries > 0
        assert summary.admit_decisions == serial.admit_decisions
        assert summary.errors == serial.errors

    def test_idempotent_retries_never_double_apply(self):
        # Same idem key twice (across batches): the second response is
        # the cached first — not an "already admitted" error.
        sc = saturating_scenario()

        async def run():
            svc = ShardedAdmissionService(sc.network)
            server = await _serve(svc)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                from repro.service import encode_line

                admit = Request(op="admit", id=1, flow=sc.flows[0],
                                idem="t#0")
                writer.write(encode_line(request_to_dict(admit)))
                await writer.drain()
                first = json.loads(await reader.readline())
                retry = Request(op="admit", id=2, flow=sc.flows[0],
                                idem="t#0")
                writer.write(encode_line(request_to_dict(retry)))
                await writer.drain()
                second = json.loads(await reader.readline())
                # Duplicate release in ONE batch: executes once.
                rel = Request(op="release", id=3,
                              flow_name=sc.flows[0].name, idem="t#1")
                rel2 = Request(op="release", id=4,
                               flow_name=sc.flows[0].name, idem="t#1")
                writer.write(encode_line(request_to_dict(rel)))
                writer.write(encode_line(request_to_dict(rel2)))
                await writer.drain()
                third = json.loads(await reader.readline())
                fourth = json.loads(await reader.readline())
                stats = svc.stats()
                writer.close()
                await writer.wait_closed()
                return first, second, third, fourth, stats, server.idem_hits
            finally:
                await server.stop()
                svc.close()

        first, second, third, fourth, stats, hits = asyncio.run(run())
        assert first["ok"] and first["accepted"]
        assert second["ok"] and second["accepted"] and second["id"] == 2
        assert third["ok"] and third["released"]
        assert fourth["ok"] and fourth["released"] and fourth["id"] == 4
        assert hits == 2
        # The service saw each logical op exactly once.
        assert stats["offered"] == 1 and stats["released"] == 1
        assert stats["errors"] == 0

    def test_load_shedding_with_retry_after(self):
        sc = saturating_scenario()

        async def run():
            svc = ShardedAdmissionService(sc.network)
            gate = asyncio.Event()
            real = svc.process_batch

            def slow(requests):
                while not gate.is_set():
                    time.sleep(0.005)
                return real(requests)

            svc.process_batch = slow
            server = await _serve(svc, batch_max=1, max_queue=2)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # First request occupies the dispatcher; the rest pile
                # into the queue until it sheds.
                for i in range(8):
                    writer.write(
                        json.dumps({"v": 2, "id": i, "op": "stats"})
                        .encode() + b"\n"
                    )
                    await writer.drain()
                    await asyncio.sleep(0.02)
                gate.set()
                docs = [
                    json.loads(await reader.readline()) for _ in range(8)
                ]
                writer.close()
                await writer.wait_closed()
                return docs, server.requests_shed
            finally:
                gate.set()
                await server.stop()
                svc.close()

        docs, shed = asyncio.run(run())
        assert [d["id"] for d in docs] == list(range(8)), "order preserved"
        shed_docs = [d for d in docs if not d["ok"]]
        assert shed == len(shed_docs) > 0
        for doc in shed_docs:
            assert doc["code"] == ERR_OVERLOADED
            assert doc["retry_after"] > 0
            assert is_retryable(doc)
        served = [d for d in docs if d["ok"]]
        assert served and all("server_sheds" in d for d in served)

    def test_expired_deadline_is_shed_not_served(self):
        sc = saturating_scenario()

        async def run():
            svc = ShardedAdmissionService(sc.network)
            server = await _serve(svc)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                doc = {"v": 2, "id": 1, "op": "stats", "deadline_s": 0.0}
                writer.write(json.dumps(doc).encode() + b"\n")
                writer.write(b'{"v": 2, "id": 2, "op": "stats"}\n')
                await writer.drain()
                first = json.loads(await reader.readline())
                second = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return first, second
            finally:
                await server.stop()
                svc.close()

        first, second = asyncio.run(run())
        assert not first["ok"] and first["code"] == ERR_DEADLINE
        assert is_retryable(first)
        assert second["ok"], "later requests on the connection unaffected"

    def test_health_verb_in_process(self):
        sc = saturating_scenario()
        with ShardedAdmissionService(sc.network) as svc:
            payload = svc.process_batch([Request(op="health")])[0]
        assert payload["status"] == "ok"
        assert payload["restarts"] == 0
        assert payload["shards"][0]["backend"] == "inline"
