"""The bench runner's trajectory labels are append-once.

``BENCH_scaling.json`` is the repo's perf history; a stray re-run with
an old label must not silently rewrite it.  The runner refuses the
duplicate and ``--force`` is the explicit override.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", REPO_ROOT / "benchmarks" / "run_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def trajectory(tmp_path):
    path = tmp_path / "BENCH_scaling.json"
    path.write_text(json.dumps({
        "v": 1,
        "entries": [
            {"label": "seed", "git": None, "benchmarks": {}},
        ],
    }))
    return path


def test_duplicate_label_refused_before_benchmarks_run(
    run_bench, trajectory, monkeypatch
):
    def boom(*a, **k):  # the refusal must come before any slow run
        raise AssertionError("benchmarks must not run for a dup label")

    monkeypatch.setattr(run_bench, "run_benchmarks", boom)
    with pytest.raises(SystemExit, match="already recorded.*--force"):
        run_bench.main(["--label", "seed", "--output", str(trajectory)])
    entries = json.loads(trajectory.read_text())["entries"]
    assert [e["label"] for e in entries] == ["seed"]  # untouched


def test_force_replaces_existing_entry(run_bench, trajectory, monkeypatch):
    monkeypatch.setattr(run_bench, "run_benchmarks", lambda *a, **k: {
        "bench_admission.py::test_admission_sequential[64]": {"mean": 1.0},
    })
    monkeypatch.setattr(
        run_bench, "collect_telemetry", lambda *a, **k: {}
    )
    run_bench.main([
        "--label", "seed", "--output", str(trajectory), "--force",
        "--no-telemetry",
    ])
    entries = json.loads(trajectory.read_text())["entries"]
    assert [e["label"] for e in entries] == ["seed"]  # replaced, not doubled
    assert entries[0]["benchmarks"]


def test_fresh_label_appends(run_bench, trajectory, monkeypatch):
    monkeypatch.setattr(
        run_bench, "run_benchmarks", lambda *a, **k: {}
    )
    run_bench.main([
        "--label", "pr9", "--output", str(trajectory), "--no-telemetry",
    ])
    entries = json.loads(trajectory.read_text())["entries"]
    assert [e["label"] for e in entries] == ["seed", "pr9"]
