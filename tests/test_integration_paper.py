"""Integration tests reproducing the paper's recoverable numbers.

Every value the scan preserves is asserted exactly:
* TSUM = 270 ms for the Fig. 3 MPEG example (Eq. 6);
* CIRC = 14.8 us for the 4-interface example switch (Sec. 3.3);
* CIRC = 11.1 us for the 48-port / 16-processor switch (conclusions);
* the 12304-bit maximum Ethernet frame / 11840-bit payload split and
  the MFT formula (Sec. 3.1 / Eq. 1).
"""

import pytest

from repro.core.context import AnalysisContext
from repro.core.demand import build_link_demand
from repro.core.holistic import holistic_analysis
from repro.core.packetization import max_frame_transmission_time
from repro.experiments.endtoend import build_example_scenario
from repro.switch.multiproc import max_linkspeed_supported, partition_interfaces
from repro.util.units import mbps, us
from repro.workloads.mpeg import paper_fig3_flow
from repro.workloads.topologies import paper_fig1_network


class TestPaperValues:
    def test_tsum_270ms(self):
        flow = paper_fig3_flow(("n0", "n4", "n6", "n3"))
        dem = build_link_demand(flow, 1e7)
        assert dem.tsum == pytest.approx(0.270)

    def test_circ_14_8us(self):
        net = paper_fig1_network()
        # n4 has interfaces to n0, n1, n6 = 3; build the 4-interface
        # example switch directly instead:
        plan = partition_interfaces(4, 1)
        assert plan.circ == pytest.approx(14.8e-6)

    def test_circ_11_1us_and_gigabit(self):
        plan = partition_interfaces(48, 16)
        assert plan.circ == pytest.approx(11.1e-6)
        assert max_linkspeed_supported(48, 16) > 1e9

    def test_mft_on_worked_example_link(self):
        """Eq. 1 at linkspeed(0,4) = 10^7: MFT = 1.2304 ms."""
        assert max_frame_transmission_time(1e7) == pytest.approx(1.2304e-3)


class TestFig2FlowEndToEnd:
    def test_fig2_route_analysable(self):
        """The Fig. 2 flow (0 -> 4 -> 6 -> 3) has a finite bound on the
        Fig. 1 network at the worked example's 10 Mbit/s."""
        net = paper_fig1_network()  # 10 Mbit/s defaults
        flow = paper_fig3_flow(("n0", "n4", "n6", "n3"), deadline=0.2)
        res = holistic_analysis(net, [flow])
        assert res.converged
        bound = res.response("mpeg")
        # The I+P packet is ~18 ms of wire per hop; three hops plus
        # blocking: the bound must be tens of ms but well under 200 ms.
        assert 0.03 < bound < 0.2

    def test_stage_count_matches_fig6(self):
        """Fig. 6 for a 2-switch route: 1 first hop + 2x(ingress+egress)."""
        net = paper_fig1_network()
        flow = paper_fig3_flow(("n0", "n4", "n6", "n3"), deadline=0.5)
        res = holistic_analysis(net, [flow])
        assert len(res.result("mpeg").frame(0).stages) == 5

    def test_example_scenario_schedulable(self):
        net, flows = build_example_scenario(speed_bps=mbps(100))
        res = holistic_analysis(net, flows)
        assert res.schedulable

    def test_i_frame_dominates_flow_response(self):
        """The I+P packet (frame 0) has the largest bound in the cycle."""
        net, flows = build_example_scenario(speed_bps=mbps(100))
        res = holistic_analysis(net, flows)
        frames = res.result("mpeg").frames
        assert frames[0].response == max(f.response for f in frames)


class TestAnalysisPropertiesOnExample:
    def test_bound_monotone_in_linkspeed(self):
        slow = build_example_scenario(speed_bps=mbps(50))
        fast = build_example_scenario(speed_bps=mbps(200))
        r_slow = holistic_analysis(*slow).response("mpeg")
        r_fast = holistic_analysis(*fast).response("mpeg")
        assert r_fast < r_slow

    def test_bound_monotone_in_priority(self):
        net, flows = build_example_scenario()
        res_hi = holistic_analysis(net, flows)
        # Demote the mpeg flow below bulk.
        demoted = [
            f.with_priority(0) if f.name == "mpeg" else f for f in flows
        ]
        res_lo = holistic_analysis(net, demoted)
        assert res_lo.response("mpeg") >= res_hi.response("mpeg")
