"""Switch-ingress analysis (Sec. 3.3, Eqs. 21-27)."""

import math

import pytest

from repro.core.context import AnalysisContext, AnalysisOptions, ingress_resource
from repro.core.results import StageKind
from repro.core.switch_ingress import ingress_response_time, ingress_utilization
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms, us


def make_flow(name="f", payload=10_000, period=ms(20), prio=3, route=("h0", "sw", "h2")):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(period,),
            deadlines=(ms(100),),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=prio,
    )


def ctx_with(net, flows, **opts):
    return AnalysisContext(net, flows, AnalysisOptions(**opts) if opts else None)


class TestSingleFlow:
    def test_single_fragment_packet(self, one_switch_net):
        """One Ethernet frame costs one CIRC at most (plus its own)."""
        flow = make_flow(payload=1_000)
        ctx = ctx_with(one_switch_net, [flow])
        res = ingress_response_time(ctx, flow, 0, "sw")
        circ = one_switch_net.circ("sw")
        assert res.response == pytest.approx(circ)
        assert res.kind is StageKind.INGRESS
        assert res.resource == ingress_resource("sw")

    def test_multi_fragment_packet_charges_per_fragment(self, one_switch_net):
        """Corrected model: F Ethernet frames need F task services."""
        flow = make_flow(payload=40_000)  # 4 fragments
        ctx = ctx_with(one_switch_net, [flow])
        res = ingress_response_time(ctx, flow, 0, "sw")
        circ = one_switch_net.circ("sw")
        frags = ctx.demand(flow, "h0", "sw").n_eth[0]
        assert frags == 4
        assert res.response == pytest.approx(frags * circ)

    def test_strict_paper_single_circ(self, one_switch_net):
        """Printed Eqs. 23-25 charge a single CIRC regardless of size."""
        flow = make_flow(payload=40_000)
        ctx = ctx_with(one_switch_net, [flow], strict_paper=True)
        res = ingress_response_time(ctx, flow, 0, "sw")
        assert res.response == pytest.approx(one_switch_net.circ("sw"))

    def test_strict_never_exceeds_corrected(self, one_switch_net):
        flow = make_flow(payload=40_000)
        strict = ingress_response_time(
            ctx_with(one_switch_net, [flow], strict_paper=True), flow, 0, "sw"
        )
        corrected = ingress_response_time(
            ctx_with(one_switch_net, [flow]), flow, 0, "sw"
        )
        assert strict.response <= corrected.response


class TestInterference:
    def test_same_ingress_link_interferes(self, one_switch_net):
        a = make_flow("a")
        b = make_flow("b")  # same source h0 -> same ingress link
        alone = ingress_response_time(ctx_with(one_switch_net, [a]), a, 0, "sw")
        shared = ingress_response_time(
            ctx_with(one_switch_net, [a, b]), a, 0, "sw"
        )
        assert shared.response > alone.response

    def test_other_ingress_link_does_not_interfere(self, one_switch_net):
        """Each interface has its own task; CIRC already covers the other
        tasks' slots, so flows arriving on other NICs add nothing."""
        a = make_flow("a")
        other = make_flow("b", route=("h1", "sw", "h2"))
        alone = ingress_response_time(ctx_with(one_switch_net, [a]), a, 0, "sw")
        both = ingress_response_time(
            ctx_with(one_switch_net, [a, other]), a, 0, "sw"
        )
        assert both.response == pytest.approx(alone.response)

    def test_priority_irrelevant_at_ingress(self, one_switch_net):
        """The ingress path is FIFO + round-robin: priorities apply only
        at egress queues."""
        a = make_flow("a", prio=5)
        r_low = ingress_response_time(
            ctx_with(one_switch_net, [a, make_flow("b", prio=0)]), a, 0, "sw"
        )
        r_high = ingress_response_time(
            ctx_with(one_switch_net, [a, make_flow("b", prio=9)]), a, 0, "sw"
        )
        assert r_low.response == pytest.approx(r_high.response)

    def test_response_scales_with_circ(self, one_switch_net, two_switch_net):
        """More interfaces -> larger CIRC -> larger ingress delay."""
        a3 = make_flow("a")  # one_switch_net: 3 interfaces
        r3 = ingress_response_time(ctx_with(one_switch_net, [a3]), a3, 0, "sw")
        a4 = make_flow("a", route=("h0", "s0", "s1", "h2"))
        r4 = ingress_response_time(ctx_with(two_switch_net, [a4]), a4, 0, "s0")
        # s0 has 3 interfaces (h0, h1, s1) -> same CIRC; build a busier one
        assert r3.converged and r4.converged


class TestUtilization:
    def test_utilization_counts_frames_times_circ(self, one_switch_net):
        a = make_flow("a", payload=40_000)
        ctx = ctx_with(one_switch_net, [a])
        u = ingress_utilization(ctx, "sw", "h0")
        dem = ctx.demand(a, "h0", "sw")
        circ = one_switch_net.circ("sw")
        assert u == pytest.approx(dem.nsum * circ / dem.tsum)

    def test_frame_flood_diverges(self):
        """Tiny packets at a rate the processor cannot classify."""
        from repro.model.network import Network, SwitchConfig

        net = Network()
        net.add_endhost("h0")
        net.add_endhost("h2")
        # Slow processor: CROUTE 100 us.
        net.add_switch("sw", SwitchConfig(c_route=us(100), c_send=us(100)))
        net.add_duplex_link("h0", "sw", speed_bps=mbps(100))
        net.add_duplex_link("sw", "h2", speed_bps=mbps(100))
        # One minimal frame every 300 us; CIRC = 2 * 200 us = 400 us > T.
        flood = make_flow("flood", payload=64, period=300e-6)
        ctx = ctx_with(net, [flood])
        assert ingress_utilization(ctx, "sw", "h0") >= 1.0
        res = ingress_response_time(ctx, flood, 0, "sw")
        assert not res.converged
        assert math.isinf(res.response)
