"""End-to-end simulator behaviour and its agreement with first principles."""

import math

import pytest

from repro.core.packetization import packetize
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network
from repro.sim.release import EagerRelease, PeriodicRelease
from repro.sim.simulator import SimConfig, Simulator, simulate
from repro.util.units import mbps, ms


def make_flow(route, name="f", payload=10_000, period=ms(20), prio=3, jitter=0.0, n=1):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(period,) * n,
            deadlines=(ms(100),) * n,
            jitters=(jitter,) * n,
            payload_bits=(payload,) * n,
        ),
        route=route,
        priority=prio,
    )


class TestBasicDelivery:
    def test_all_packets_delivered(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"))
        trace = simulate(two_switch_net, [flow], duration=1.0)
        assert trace.count_completed() > 0
        assert trace.count_incomplete() == 0

    def test_packet_count_matches_arrivals(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"), period=ms(10))
        trace = simulate(two_switch_net, [flow], duration=1.0)
        # Arrivals at 0, 10ms, ..., ~1000ms: 100 or 101 packets depending
        # on float accumulation at the horizon boundary.
        assert trace.count_completed("f") in (100, 101)

    def test_response_at_least_zero_load_latency(self, two_switch_net):
        """No packet can beat wire time + switch processing."""
        from repro.model.validation import minimum_path_latency

        flow = make_flow(("h0", "s0", "s1", "h2"))
        floor = minimum_path_latency(two_switch_net, flow, 0)
        trace = simulate(two_switch_net, [flow], duration=0.5)
        assert min(trace.responses("f")) >= floor - 1e-12

    def test_isolated_flow_response_close_to_floor(self, two_switch_net):
        """Event mode, no contention: response within 2x of the physical
        floor (only rotation/pipelining slack on top)."""
        from repro.model.validation import minimum_path_latency

        flow = make_flow(("h0", "s0", "s1", "h2"))
        floor = minimum_path_latency(two_switch_net, flow, 0)
        trace = simulate(two_switch_net, [flow], duration=0.5)
        assert trace.worst_response("f") <= 2 * floor

    def test_direct_route_no_switch(self):
        net = Network()
        net.add_endhost("a")
        net.add_endhost("b")
        net.add_duplex_link("a", "b", speed_bps=mbps(100))
        flow = make_flow(("a", "b"))
        trace = simulate(net, [flow], duration=0.2)
        pkt = packetize(10_000)
        expected = pkt.wire_bits / mbps(100)
        assert trace.worst_response("f") == pytest.approx(expected)


class TestFragmentation:
    def test_multifragment_packet_completes_once(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"), payload=120_000)
        trace = simulate(two_switch_net, [flow], duration=0.5)
        frags = packetize(120_000).n_eth_frames
        assert frags > 1
        for p in trace.completed_packets("f"):
            assert p.n_fragments == frags
            assert p.fragments_received == frags

    def test_jitter_spreads_response(self, two_switch_net):
        """Generalized jitter stretches the observed response (fragments
        released across the window)."""
        calm = make_flow(("h0", "s0", "s1", "h2"), payload=120_000, jitter=0.0)
        jittery = make_flow(
            ("h0", "s0", "s1", "h2"), payload=120_000, jitter=ms(5)
        )
        r_calm = simulate(two_switch_net, [calm], duration=0.5).worst_response("f")
        r_jit = simulate(two_switch_net, [jittery], duration=0.5).worst_response("f")
        assert r_jit > r_calm


class TestContention:
    def test_priority_protects_high_flow(self, two_switch_net):
        """On the shared egress link the high-priority flow's worst
        response is below the low-priority flow's."""
        hi = make_flow(("h0", "s0", "s1", "h2"), "hi", prio=9,
                       payload=40_000, period=ms(5))
        lo = make_flow(("h1", "s0", "s1", "h3"), "lo", prio=1,
                       payload=40_000, period=ms(5))
        trace = simulate(two_switch_net, [hi, lo], duration=1.0)
        assert trace.worst_response("hi") < trace.worst_response("lo")

    def test_contention_increases_response(self, two_switch_net):
        a = make_flow(("h0", "s0", "s1", "h2"), "a", payload=100_000, period=ms(5))
        alone = simulate(two_switch_net, [a], duration=0.5).worst_response("a")
        b = make_flow(("h1", "s0", "s1", "h3"), "b", payload=100_000,
                      period=ms(5), prio=9)
        both = simulate(two_switch_net, [a, b], duration=0.5).worst_response("a")
        assert both > alone


class TestDeterminism:
    def test_identical_runs(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", payload=50_000),
            make_flow(("h1", "s0", "s1", "h3"), "b", payload=30_000, prio=7),
        ]
        t1 = simulate(two_switch_net, flows, duration=0.5)
        t2 = simulate(two_switch_net, flows, duration=0.5)
        assert t1.responses("a") == t2.responses("a")
        assert t1.responses("b") == t2.responses("b")

    def test_modes_comparable(self, two_switch_net):
        """Rotation mode is never faster than event mode on the worst
        response (it adds slot-alignment waits)."""
        flow = make_flow(("h0", "s0", "s1", "h2"), payload=50_000)
        ev = simulate(
            two_switch_net, [flow],
            config=SimConfig(duration=0.5, switch_mode="event"),
        ).worst_response("f")
        rot = simulate(
            two_switch_net, [flow],
            config=SimConfig(duration=0.5, switch_mode="rotation"),
        ).worst_response("f")
        assert rot >= ev - 1e-12


class TestReleasePolicies:
    def test_slower_release_reduces_contention(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", payload=100_000, period=ms(5)),
            make_flow(("h0", "s0", "s1", "h2"), "b", payload=100_000, period=ms(5)),
        ]
        eager = simulate(
            two_switch_net, flows, duration=0.5,
            release_policies={"a": EagerRelease(), "b": EagerRelease()},
        ).worst_response("a")
        relaxed = simulate(
            two_switch_net, flows, duration=0.5,
            release_policies={
                "a": EagerRelease(),
                "b": PeriodicRelease(slack_factor=3.0, phase=ms(2.5)),
            },
        ).worst_response("a")
        assert relaxed <= eager


class TestConfigValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError):
            SimConfig(duration=0)

    def test_bad_mode(self, two_switch_net):
        with pytest.raises(ValueError, match="unknown switch mode"):
            Simulator(
                two_switch_net,
                [make_flow(("h0", "s0", "s1", "h2"))],
                SimConfig(duration=1.0, switch_mode="warp"),
            )

    def test_duplicate_flow_names_rejected(self, two_switch_net):
        with pytest.raises(ValueError):
            simulate(
                two_switch_net,
                [
                    make_flow(("h0", "s0", "s1", "h2"), "x"),
                    make_flow(("h1", "s0", "s1", "h3"), "x"),
                ],
                duration=0.1,
            )

    def test_invalid_route_rejected(self, two_switch_net):
        with pytest.raises(Exception):
            simulate(
                two_switch_net,
                [make_flow(("h0", "h2"))],
                duration=0.1,
            )
