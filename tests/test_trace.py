"""Simulation trace records and aggregates."""

import math

import pytest

from repro.sim.trace import PacketRecord, SimulationTrace


def record(pid, flow="f", frame=0, arrival=0.0, completed=None, nfrags=1):
    r = PacketRecord(
        packet_id=pid,
        flow=flow,
        frame=frame,
        arrival=arrival,
        n_fragments=nfrags,
    )
    if completed is not None:
        r.fragments_received = nfrags
        r.completed = completed
    return r


@pytest.fixture
def trace():
    t = SimulationTrace(duration=1.0)
    t.packets = [
        record(0, flow="a", frame=0, arrival=0.0, completed=0.010),
        record(1, flow="a", frame=1, arrival=0.1, completed=0.105),
        record(2, flow="a", frame=0, arrival=0.2, completed=0.230),
        record(3, flow="b", frame=0, arrival=0.0, completed=0.001),
        record(4, flow="a", frame=1, arrival=0.9),  # in flight
    ]
    return t


class TestResponses:
    def test_response_property(self):
        assert record(0, arrival=1.0, completed=1.25).response == pytest.approx(0.25)

    def test_incomplete_response_none(self):
        assert record(0).response is None

    def test_responses_by_flow(self, trace):
        assert len(trace.responses("a")) == 3

    def test_responses_by_frame(self, trace):
        assert trace.responses("a", 0) == [
            pytest.approx(0.010),
            pytest.approx(0.030),
        ]

    def test_worst_response(self, trace):
        assert trace.worst_response("a") == pytest.approx(0.030)

    def test_worst_response_empty_is_neg_inf(self, trace):
        assert trace.worst_response("ghost") == -math.inf

    def test_mean_response(self, trace):
        assert trace.mean_response("b") == pytest.approx(0.001)

    def test_mean_response_empty_nan(self, trace):
        assert math.isnan(trace.mean_response("ghost"))


class TestCounts:
    def test_completed(self, trace):
        assert trace.count_completed() == 4
        assert trace.count_completed("a") == 3

    def test_incomplete(self, trace):
        assert trace.count_incomplete() == 1
        assert trace.count_incomplete("a") == 1
        assert trace.count_incomplete("b") == 0

    def test_flows(self, trace):
        assert trace.flows() == ["a", "b"]


class TestDeadlineMisses:
    def test_counts_misses(self, trace):
        # Flow a frame 0: responses 10 ms (ok) and 30 ms (miss) against
        # the 20 ms deadline; frame 1: 5 ms ok against 10 ms.
        misses = trace.deadline_misses({"a": (0.020, 0.010)})
        assert misses == 1

    def test_counts_misses_exact(self):
        t = SimulationTrace(duration=1.0)
        t.packets = [
            record(0, flow="a", frame=0, arrival=0.0, completed=0.010),
            record(1, flow="a", frame=0, arrival=0.1, completed=0.130),
        ]
        assert t.deadline_misses({"a": (0.020,)}) == 1

    def test_unknown_flow_ignored(self, trace):
        assert trace.deadline_misses({"zz": (1.0,)}) == 0


class TestPercentiles:
    def test_median_and_tail(self, trace):
        # Flow a responses: 10, 5, 30 ms -> sorted [5, 10, 30].
        assert trace.response_percentile("a", 50) == pytest.approx(0.010)
        assert trace.response_percentile("a", 100) == pytest.approx(0.030)
        assert trace.response_percentile("a", 1) == pytest.approx(0.005)

    def test_empty_flow_nan(self, trace):
        assert math.isnan(trace.response_percentile("ghost", 50))

    def test_invalid_q(self, trace):
        from repro.sim.trace import percentile

        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_percentile_monotone_in_q(self, trace):
        values = [trace.response_percentile("a", q) for q in (10, 50, 90, 100)]
        assert values == sorted(values)
