"""Demand-bound functions (Eqs. 4-13): windowed sums, MXS/MX/NXS/NX.

Includes a brute-force reference implementation cross-checked against
the vectorised one under hypothesis.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.demand import LinkDemand, build_link_demand
from repro.core.packetization import packetize
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec


def make_flow(seps, payloads, name="f"):
    n = len(seps)
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=tuple(seps),
            deadlines=(10.0,) * n,
            jitters=(0.0,) * n,
            payload_bits=tuple(payloads),
        ),
        route=("a", "s", "b"),
    )


@pytest.fixture
def video_demand() -> LinkDemand:
    flow = make_flow([0.03] * 3, [120_000, 40_000, 40_000])
    return build_link_demand(flow, 1e8)


# ----------------------------------------------------------------------
# Brute-force reference (directly transcribing Eqs. 7-13)
# ----------------------------------------------------------------------
def brute_mxs(dem: LinkDemand, t: float) -> float:
    n = dem.n_frames
    best = 0.0
    for k1 in range(n):
        for k2 in range(1, n + 1):
            if dem.tsum_window(k1, k2) <= t:
                best = max(best, min(t, dem.csum_window(k1, k2)))
    return best


def brute_nxs(dem: LinkDemand, t: float) -> int:
    n = dem.n_frames
    best = 0
    for k1 in range(n):
        for k2 in range(1, n + 1):
            if dem.tsum_window(k1, k2) <= t:
                best = max(best, dem.nsum_window(k1, k2))
    return best


def brute_mx(dem: LinkDemand, t: float) -> float:
    if t <= 0:
        return 0.0
    cycles = math.floor(t / dem.tsum)
    rem = t - cycles * dem.tsum
    return cycles * dem.csum + (brute_mxs(dem, rem) if rem > 0 else 0.0)


def brute_nx(dem: LinkDemand, t: float) -> int:
    if t < 0:
        return 0
    cycles = math.floor(t / dem.tsum)
    rem = t - cycles * dem.tsum
    return cycles * dem.nsum + brute_nxs(dem, max(rem, 0.0))


class TestCycleSums:
    def test_csum_is_sum_of_c(self, video_demand):
        assert video_demand.csum == pytest.approx(sum(video_demand.c))

    def test_nsum_counts_fragments(self, video_demand):
        expected = sum(
            packetize(s).n_eth_frames for s in (120_000, 40_000, 40_000)
        )
        assert video_demand.nsum == expected

    def test_tsum(self, video_demand):
        assert video_demand.tsum == pytest.approx(0.09)

    def test_utilization(self, video_demand):
        assert video_demand.utilization == pytest.approx(
            video_demand.csum / 0.09
        )

    def test_max_c_is_i_frame(self, video_demand):
        assert video_demand.max_c == pytest.approx(video_demand.c[0])


class TestWindowedSums:
    def test_full_cycle_window_equals_csum(self, video_demand):
        for k1 in range(3):
            assert video_demand.csum_window(k1, 3) == pytest.approx(
                video_demand.csum
            )

    def test_tsum_window_one_fewer_term(self, video_demand):
        """Eq. 9 sums k2-1 separations (first-to-last arrival)."""
        assert video_demand.tsum_window(0, 1) == 0.0
        assert video_demand.tsum_window(0, 2) == pytest.approx(0.03)
        assert video_demand.tsum_window(0, 3) == pytest.approx(0.06)

    def test_window_wraps(self):
        dem = build_link_demand(
            make_flow([0.01, 0.02], [1000, 2000]), 1e8
        )
        # Window of 2 starting at frame 1 wraps to frame 0.
        assert dem.csum_window(1, 2) == pytest.approx(dem.c[1] + dem.c[0])
        assert dem.tsum_window(1, 2) == pytest.approx(0.02)

    def test_invalid_window(self, video_demand):
        with pytest.raises(IndexError):
            video_demand.csum_window(5, 1)
        with pytest.raises(ValueError):
            video_demand.csum_window(0, 0)


class TestMxs:
    def test_zero_at_zero(self, video_demand):
        assert video_demand.mxs(0.0) == 0.0

    def test_capped_by_t(self, video_demand):
        t = 1e-4
        assert video_demand.mxs(t) <= t

    def test_rejects_t_at_tsum(self, video_demand):
        with pytest.raises(ValueError):
            video_demand.mxs(video_demand.tsum)

    def test_single_frame_window_dominates_small_t(self, video_demand):
        # For t between C_max and TSUM-window thresholds the best window
        # is the I-frame alone.
        t = 0.02  # < 30 ms separation: only single-frame windows fit
        assert video_demand.mxs(t) == pytest.approx(
            min(t, video_demand.max_c)
        )

    def test_matches_bruteforce_on_grid(self, video_demand):
        for t in [1e-6, 1e-4, 0.005, 0.0299, 0.03, 0.031, 0.06, 0.0899]:
            assert video_demand.mxs(t) == pytest.approx(
                brute_mxs(video_demand, t)
            )


class TestMx:
    def test_zero_for_nonpositive(self, video_demand):
        assert video_demand.mx(0.0) == 0.0
        assert video_demand.mx(-1.0) == 0.0

    def test_cycle_additivity(self, video_demand):
        """MX(t + TSUM) = MX(t) + CSUM (Eq. 11 structure)."""
        for t in [0.001, 0.0123, 0.05, 0.089]:
            assert video_demand.mx(t + video_demand.tsum) == pytest.approx(
                video_demand.mx(t) + video_demand.csum
            )

    def test_at_exact_multiples(self, video_demand):
        assert video_demand.mx(video_demand.tsum) == pytest.approx(
            video_demand.csum
        )
        assert video_demand.mx(3 * video_demand.tsum) == pytest.approx(
            3 * video_demand.csum
        )

    def test_monotone_on_grid(self, video_demand):
        ts = [0.001 * i for i in range(1, 200)]
        vals = [video_demand.mx(t) for t in ts]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))

    def test_matches_bruteforce(self, video_demand):
        for t in [1e-5, 0.01, 0.03, 0.0455, 0.09, 0.1, 0.27, 0.3001]:
            assert video_demand.mx(t) == pytest.approx(
                brute_mx(video_demand, t)
            )


class TestNxs:
    def test_burst_visible_at_zero_window(self):
        """Zero separations allow multiple frames in an instant (no
        min(t,.) cap in Eq. 12)."""
        dem = build_link_demand(
            make_flow([0.0, 0.0, 0.03], [1000, 1000, 1000]), 1e8
        )
        assert dem.nxs(1e-9) == 3

    def test_single_frame_at_small_t(self, video_demand):
        # I-frame fragments into the most Ethernet frames.
        assert video_demand.nxs(1e-6) == max(video_demand.n_eth)

    def test_rejects_t_at_tsum(self, video_demand):
        with pytest.raises(ValueError):
            video_demand.nxs(0.09)

    def test_matches_bruteforce_on_grid(self, video_demand):
        for t in [0.0, 1e-6, 0.01, 0.03, 0.0601, 0.0899]:
            assert video_demand.nxs(t) == brute_nxs(video_demand, t)


class TestNx:
    def test_cycle_additivity(self, video_demand):
        for t in [0.0, 0.001, 0.05]:
            assert video_demand.nx(t + video_demand.tsum) == (
                video_demand.nx(t) + video_demand.nsum
            )

    def test_matches_bruteforce(self, video_demand):
        for t in [0.0, 1e-5, 0.0301, 0.09, 0.12, 0.27, 0.5]:
            assert video_demand.nx(t) == brute_nx(video_demand, t)

    def test_negative_t(self, video_demand):
        assert video_demand.nx(-0.5) == 0


class TestHypothesisCrossCheck:
    @given(
        seps=st.lists(
            st.floats(1e-3, 0.1, allow_nan=False), min_size=1, max_size=6
        ),
        payload_seed=st.integers(1, 10**5),
        t=st.floats(0, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_mx_nx_match_bruteforce(self, seps, payload_seed, t):
        if sum(seps) <= 0:
            return
        n = len(seps)
        payloads = [((payload_seed * (i + 1)) % 90_000) + 64 for i in range(n)]
        dem = build_link_demand(make_flow(seps, payloads), 1e8)
        # Float drift at exact window boundaries means the two
        # implementations may disagree exactly there; bracket instead:
        # the vectorised value must lie between brute(t) and brute(t+eps)
        # (the library deliberately rounds boundaries conservatively up).
        eps = t * 1e-9 + 1e-12
        assert brute_mx(dem, t) - 1e-12 <= dem.mx(t) <= brute_mx(dem, t + eps) + 1e-12
        assert brute_nx(dem, t) <= dem.nx(t) <= brute_nx(dem, t + eps)

    @given(
        t1=st.floats(0, 0.3),
        t2=st.floats(0, 0.3),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotonicity(self, t1, t2, ):
        dem = build_link_demand(
            make_flow([0.03, 0.01, 0.05], [90_000, 5_000, 20_000]), 1e8
        )
        lo, hi = min(t1, t2), max(t1, t2)
        assert dem.mx(lo) <= dem.mx(hi) + 1e-12
        assert dem.nx(lo) <= dem.nx(hi)


class TestMxWork:
    """The uncapped arrival-work bound (corrected Eq. 11; DESIGN.md)."""

    def test_positive_at_zero(self, video_demand):
        """A right-closed zero-length window contains one arrival."""
        assert video_demand.mx_work(0.0) == pytest.approx(
            video_demand.max_c
        )

    def test_negative_is_zero(self, video_demand):
        assert video_demand.mx_work(-1.0) == 0.0

    def test_dominates_capped_mx(self, video_demand):
        for t in [0.0, 1e-5, 0.01, 0.03, 0.0455, 0.09, 0.27, 0.31]:
            assert video_demand.mx_work(t) >= video_demand.mx(t) - 1e-12

    def test_cycle_additivity(self, video_demand):
        for t in [0.0, 0.001, 0.0123, 0.05, 0.089]:
            assert video_demand.mx_work(
                t + video_demand.tsum
            ) == pytest.approx(video_demand.mx_work(t) + video_demand.csum)

    def test_monotone(self, video_demand):
        ts = [0.0005 * i for i in range(400)]
        vals = [video_demand.mx_work(t) for t in ts]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))

    def test_burst_counted_fully(self):
        """Zero-separation frames all arrive at the window boundary."""
        dem = build_link_demand(
            make_flow([0.0, 0.0, 0.03], [1000, 2000, 3000]), 1e8
        )
        assert dem.mx_work(0.0) == pytest.approx(sum(dem.c))

    def test_matches_nx_granularity(self, video_demand):
        """mx_work and nx step at the same window boundaries."""
        eps = 1e-9
        t = 0.03  # a separation boundary
        assert video_demand.nx(t) > video_demand.nx(t - 2 * eps)
        assert video_demand.mx_work(t) > video_demand.mx_work(t - 2 * eps)
