"""The Fig. 6 end-to-end composition algorithm."""

import math

import pytest

from repro.core.context import AnalysisContext, AnalysisOptions, ingress_resource, link_resource
from repro.core.pipeline import analyze_flow, analyze_flow_frame
from repro.core.results import StageKind
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms


def make_flow(route, name="f", payload=10_000, jitter=0.0, prio=3):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(ms(100),),
            jitters=(jitter,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=prio,
    )


class TestStageStructure:
    def test_stage_sequence_two_switches(self, two_switch_net):
        """Fig. 6 for S->W1->W2->D: first hop, in(W1), link(W1,W2),
        in(W2), link(W2,D)."""
        flow = make_flow(("h0", "s0", "s1", "h2"))
        ctx = AnalysisContext(two_switch_net, [flow])
        result = analyze_flow(ctx, flow)
        kinds = [s.kind for s in result.frame(0).stages]
        assert kinds == [
            StageKind.FIRST_HOP,
            StageKind.INGRESS,
            StageKind.EGRESS,
            StageKind.INGRESS,
            StageKind.EGRESS,
        ]
        resources = [s.resource for s in result.frame(0).stages]
        assert resources == [
            link_resource("h0", "s0"),
            ingress_resource("s0"),
            link_resource("s0", "s1"),
            ingress_resource("s1"),
            link_resource("s1", "h2"),
        ]

    def test_one_switch_route(self, one_switch_net):
        flow = make_flow(("h0", "sw", "h2"))
        ctx = AnalysisContext(one_switch_net, [flow])
        result = analyze_flow(ctx, flow)
        kinds = [s.kind for s in result.frame(0).stages]
        assert kinds == [StageKind.FIRST_HOP, StageKind.INGRESS, StageKind.EGRESS]

    def test_direct_route_first_hop_only(self):
        from repro.model.network import Network

        net = Network()
        net.add_endhost("a")
        net.add_endhost("b")
        net.add_duplex_link("a", "b", speed_bps=mbps(100))
        flow = make_flow(("a", "b"))
        ctx = AnalysisContext(net, [flow])
        result = analyze_flow(ctx, flow)
        assert [s.kind for s in result.frame(0).stages] == [StageKind.FIRST_HOP]


class TestResponseComposition:
    def test_response_is_jitter_plus_stage_sum(self, two_switch_net):
        """Fig. 6 line 3: RSUM starts at GJ_i^k."""
        flow = make_flow(("h0", "s0", "s1", "h2"), jitter=ms(2))
        ctx = AnalysisContext(two_switch_net, [flow])
        fr = analyze_flow(ctx, flow).frame(0)
        stage_sum = sum(s.response for s in fr.stages)
        assert fr.response == pytest.approx(ms(2) + stage_sum)

    def test_jitter_table_updated_along_route(self, two_switch_net):
        """Fig. 6 lines 8/13/17: the jitter at each resource equals the
        accumulated upstream response."""
        flow = make_flow(("h0", "s0", "s1", "h2"), jitter=ms(2))
        ctx = AnalysisContext(two_switch_net, [flow])
        fr = analyze_flow(ctx, flow).frame(0)
        # At the first link the jitter is just the source jitter.
        assert ctx.jitters.get("f", link_resource("h0", "s0"))[0] == pytest.approx(ms(2))
        # At in(s0) it is GJ + first-hop response.
        expect = ms(2) + fr.stages[0].response
        assert ctx.jitters.get("f", ingress_resource("s0"))[0] == pytest.approx(expect)
        # At link(s1,h2): GJ + sum of the first four stages.
        expect = ms(2) + sum(s.response for s in fr.stages[:4])
        assert ctx.jitters.get("f", link_resource("s1", "h2"))[0] == pytest.approx(expect)

    def test_deadline_check(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"))
        ctx = AnalysisContext(two_switch_net, [flow])
        result = analyze_flow(ctx, flow)
        assert result.schedulable
        assert result.frame(0).slack > 0

    def test_analyze_flow_frame_matches_full(self, two_switch_net, video_spec):
        flow = Flow("v", video_spec, ("h0", "s0", "s1", "h2"), priority=5)
        ctx = AnalysisContext(two_switch_net, [flow])
        full = analyze_flow(ctx, flow)
        single = analyze_flow_frame(ctx, flow, 1)
        assert single.response == pytest.approx(full.frame(1).response)

    def test_frame_index_validated(self, two_switch_net, video_spec):
        flow = Flow("v", video_spec, ("h0", "s0", "s1", "h2"))
        ctx = AnalysisContext(two_switch_net, [flow])
        with pytest.raises(IndexError):
            analyze_flow_frame(ctx, flow, 7)


class TestDivergencePropagation:
    def test_downstream_stages_inf_after_divergence(self, two_switch_net):
        """A diverged stage poisons everything downstream."""
        victim = make_flow(("h0", "s0", "s1", "h2"), name="victim", prio=1)
        hog = make_flow(
            ("h1", "s0", "s1", "h3"), name="hog", prio=9,
            payload=2_500_000,  # saturates s0->s1
        )
        ctx = AnalysisContext(two_switch_net, [victim, hog])
        result = analyze_flow(ctx, victim)
        fr = result.frame(0)
        assert math.isinf(fr.response)
        # The egress on the shared link diverges; later stages are inf.
        diverged_at = next(
            i for i, s in enumerate(fr.stages) if not s.converged
        )
        for s in fr.stages[diverged_at:]:
            assert not s.converged

    def test_unschedulable_not_schedulable(self, two_switch_net):
        victim = make_flow(("h0", "s0", "s1", "h2"), name="victim", prio=1)
        hog = make_flow(("h1", "s0", "s1", "h3"), name="hog", prio=9,
                        payload=2_500_000)
        ctx = AnalysisContext(two_switch_net, [victim, hog])
        assert not analyze_flow(ctx, victim).schedulable


class TestStageBreakdownHelper:
    def test_labels(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"))
        ctx = AnalysisContext(two_switch_net, [flow])
        fr = analyze_flow(ctx, flow).frame(0)
        labels = [label for label, _ in fr.stage_breakdown()]
        assert labels[0].startswith("first_hop")
        assert labels[1] == "in(s0)"
        assert "egress link(s0,s1)" in labels
