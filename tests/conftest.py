"""Shared fixtures: small canonical networks and flows."""

from __future__ import annotations

import pytest

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network, SwitchConfig
from repro.util.units import mbps, ms, us


@pytest.fixture
def one_switch_net() -> Network:
    """h0, h1 --- sw --- h2  (100 Mbit/s duplex links)."""
    net = Network()
    net.add_endhost("h0")
    net.add_endhost("h1")
    net.add_endhost("h2")
    net.add_switch("sw")
    net.add_duplex_link("h0", "sw", speed_bps=mbps(100))
    net.add_duplex_link("h1", "sw", speed_bps=mbps(100))
    net.add_duplex_link("h2", "sw", speed_bps=mbps(100))
    return net


@pytest.fixture
def two_switch_net() -> Network:
    """h0,h1 -- s0 -- s1 -- h2,h3 (100 Mbit/s)."""
    net = Network()
    for h in ("h0", "h1", "h2", "h3"):
        net.add_endhost(h)
    net.add_switch("s0")
    net.add_switch("s1")
    net.add_duplex_link("h0", "s0", speed_bps=mbps(100))
    net.add_duplex_link("h1", "s0", speed_bps=mbps(100))
    net.add_duplex_link("s0", "s1", speed_bps=mbps(100))
    net.add_duplex_link("s1", "h2", speed_bps=mbps(100))
    net.add_duplex_link("s1", "h3", speed_bps=mbps(100))
    return net


@pytest.fixture
def video_spec() -> GmfSpec:
    """3-frame GMF video cycle: big I frame + two small frames."""
    return GmfSpec(
        min_separations=(ms(30),) * 3,
        deadlines=(ms(100),) * 3,
        jitters=(ms(1),) * 3,
        payload_bits=(120_000, 40_000, 40_000),
    )


@pytest.fixture
def voip_like_spec() -> GmfSpec:
    """Single-frame (sporadic) voice cycle."""
    return GmfSpec(
        min_separations=(ms(20),),
        deadlines=(ms(50),),
        jitters=(0.0,),
        payload_bits=(1_280,),
    )


@pytest.fixture
def video_flow(two_switch_net, video_spec) -> Flow:
    return Flow(
        name="video",
        spec=video_spec,
        route=("h0", "s0", "s1", "h2"),
        priority=5,
    )


@pytest.fixture
def voip_flow_fx(two_switch_net, voip_like_spec) -> Flow:
    return Flow(
        name="voip",
        spec=voip_like_spec,
        route=("h1", "s0", "s1", "h3"),
        priority=7,
    )
