"""Problem-instance validation and latency floors."""

import pytest

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.validation import (
    minimum_path_latency,
    validate_problem,
)
from repro.util.units import ms


def make_flow(route, name="f", deadline=ms(100), payload=10_000):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(deadline,),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
    )


class TestValidateProblem:
    def test_clean_instance(self, two_switch_net):
        report = validate_problem(
            two_switch_net, [make_flow(("h0", "s0", "s1", "h2"))]
        )
        assert report.ok
        assert report.issues == ()

    def test_duplicate_names(self, two_switch_net):
        report = validate_problem(
            two_switch_net,
            [
                make_flow(("h0", "s0", "s1", "h2"), "x"),
                make_flow(("h1", "s0", "s1", "h3"), "x"),
            ],
        )
        assert not report.ok
        assert any("duplicate" in i.message for i in report.errors)

    def test_bad_route(self, two_switch_net):
        report = validate_problem(two_switch_net, [make_flow(("h0", "h2"))])
        assert not report.ok
        assert report.errors[0].flow == "f"

    def test_impossible_deadline_warns(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"), deadline=1e-9)
        report = validate_problem(two_switch_net, [flow])
        assert report.ok  # warning, not error
        assert any("never schedulable" in w.message for w in report.warnings)


class TestLatencyFloor:
    def test_floor_components(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"))
        floor = minimum_path_latency(two_switch_net, flow, 0)
        from repro.core.packetization import packetize

        wire = 3 * packetize(10_000).wire_bits / 1e8
        tasks = 2 * (2.7e-6 + 1.0e-6)
        assert floor == pytest.approx(wire + tasks)

    def test_floor_below_any_simulation(self, two_switch_net):
        from repro.sim.simulator import simulate

        flow = make_flow(("h0", "s0", "s1", "h2"))
        floor = minimum_path_latency(two_switch_net, flow, 0)
        trace = simulate(two_switch_net, [flow], duration=0.3)
        assert min(trace.responses("f")) >= floor - 1e-12

    def test_floor_below_analysis_bound(self, two_switch_net):
        from repro.core.holistic import holistic_analysis

        flow = make_flow(("h0", "s0", "s1", "h2"))
        floor = minimum_path_latency(two_switch_net, flow, 0)
        res = holistic_analysis(two_switch_net, [flow])
        assert res.response("f") >= floor
