"""Click switch structural model and multiprocessor partitioning."""

import pytest

from repro.model.network import SwitchConfig
from repro.switch.click import ClickSwitch, TaskKind
from repro.switch.multiproc import (
    circ_with_processors,
    max_linkspeed_supported,
    partition_interfaces,
)
from repro.util.units import us


class TestClickSwitch:
    def test_paper_example_circ(self):
        """Fig. 5 / Sec. 3.3: 4 interfaces -> CIRC = 14.8 us."""
        sw = ClickSwitch("n4", ["a", "b", "c", "d"])
        assert sw.circ == pytest.approx(14.8e-6)

    def test_two_tasks_per_interface(self):
        sw = ClickSwitch("s", ["a", "b", "c"])
        assert len(sw.tasks) == 6
        kinds = [t.kind for t in sw.tasks]
        assert kinds.count(TaskKind.INGRESS) == 3
        assert kinds.count(TaskKind.EGRESS) == 3

    def test_task_costs(self):
        cfg = SwitchConfig(c_route=us(2.7), c_send=us(1.0))
        sw = ClickSwitch("s", ["a"], cfg)
        ingress = next(t for t in sw.tasks if t.kind is TaskKind.INGRESS)
        egress = next(t for t in sw.tasks if t.kind is TaskKind.EGRESS)
        assert ingress.cost == pytest.approx(2.7e-6)
        assert egress.cost == pytest.approx(1.0e-6)

    def test_queues_per_interface(self):
        sw = ClickSwitch("s", ["a", "b"])
        assert set(sw.rx_fifo) == {"a", "b"}
        assert set(sw.tx_fifo) == {"a", "b"}
        assert set(sw.output_queue) == {"a", "b"}

    def test_single_scheduler_single_processor(self):
        sw = ClickSwitch("s", ["a", "b"])
        assert len(sw.schedulers) == 1
        assert len(sw.schedulers[0]) == 4  # 2 tasks * 2 interfaces

    def test_multiprocessor_partitioning(self):
        cfg = SwitchConfig(n_processors=2)
        sw = ClickSwitch("s", ["a", "b", "c", "d"], cfg)
        assert len(sw.schedulers) == 2
        # Both tasks of an interface on the same processor.
        for itf in sw.interfaces:
            sched = sw.scheduler_for(itf)
            names = {t.name for t in sched.tasks()}
            assert f"ingress:{itf}" in names
            assert f"egress:{itf}" in names

    def test_multiprocessor_circ_reduced(self):
        cfg2 = SwitchConfig(n_processors=2)
        sw2 = ClickSwitch("s", ["a", "b", "c", "d"], cfg2)
        sw1 = ClickSwitch("t", ["a", "b", "c", "d"])
        assert sw2.circ == pytest.approx(sw1.circ / 2)

    def test_indivisible_partitioning_rejected(self):
        cfg = SwitchConfig(n_processors=3)
        with pytest.raises(ValueError, match="divisible"):
            ClickSwitch("s", ["a", "b", "c", "d"], cfg)

    def test_duplicate_interfaces_rejected(self):
        with pytest.raises(ValueError):
            ClickSwitch("s", ["a", "a"])

    def test_no_interfaces_rejected(self):
        with pytest.raises(ValueError):
            ClickSwitch("s", [])

    def test_total_backlog_counts_all_queues(self):
        from repro.switch.queues import QueuedFrame

        sw = ClickSwitch("s", ["a", "b"])
        f = QueuedFrame("x", 100, 0, 0, 0, 1)
        sw.rx_fifo["a"].push(f)
        sw.output_queue["b"].push(f)
        sw.tx_fifo["a"].push(f)
        assert sw.total_backlog() == 3

    def test_describe(self):
        text = ClickSwitch("s", ["a", "b"]).describe()
        assert "2 interfaces" in text


class TestMultiproc:
    def test_paper_48_port_example(self):
        """Conclusions: 48 ports / 16 cpus -> CIRC = 11.1 us."""
        plan = partition_interfaces(48, 16)
        assert plan.circ == pytest.approx(11.1e-6)
        assert plan.interfaces_per_processor == 3

    def test_gigabit_claim(self):
        """Conclusions: such a switch comfortably handles 1 Gbit/s."""
        assert max_linkspeed_supported(48, 16) >= 1e9

    def test_single_processor_cannot_do_gigabit(self):
        """A 48-port single-CPU software switch cannot keep 1 Gbit/s
        links busy (CIRC would be 177.6 us >> MFT)."""
        assert max_linkspeed_supported(48, 1) < 1e9

    def test_circ_scales_inverse_with_processors(self):
        c1 = circ_with_processors(16, 1)
        c4 = circ_with_processors(16, 4)
        assert c4 == pytest.approx(c1 / 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            partition_interfaces(48, 5)

    def test_describe(self):
        assert "48-port" in partition_interfaces(48, 16).describe()
