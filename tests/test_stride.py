"""Stride scheduler: proportional share, round-robin collapse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch.stride import STRIDE1, StrideScheduler, StrideTask


class TestStrideTask:
    def test_stride_is_large_constant_over_tickets(self):
        t = StrideTask("a", tickets=4)
        assert t.stride == STRIDE1 // 4

    def test_pass_initialised_to_stride(self):
        """Paper Sec. 2.2: 'the pass of a task is initialized to its
        stride' at boot."""
        t = StrideTask("a", tickets=2)
        assert t.passes == t.stride

    def test_zero_tickets_rejected(self):
        with pytest.raises(ValueError):
            StrideTask("a", tickets=0)


class TestRoundRobin:
    def test_equal_tickets_round_robin(self):
        """Footnote 1: all tickets = 1 collapses to round-robin."""
        s = StrideScheduler()
        for name in "abcd":
            s.add_task(name)
        order = [s.dispatch().name for _ in range(8)]
        assert order == list("abcd") * 2

    def test_is_round_robin_flag(self):
        s = StrideScheduler()
        s.add_task("a")
        s.add_task("b")
        assert s.is_round_robin()
        s.add_task("c", tickets=3)
        assert not s.is_round_robin()

    def test_worst_case_gap_round_robin(self):
        s = StrideScheduler()
        for name in "abcd":
            s.add_task(name)
        assert s.worst_case_gap("a") == 4


class TestProportionalShare:
    def test_two_to_one(self):
        """Paper: 'a task with ticket=2 will execute twice as frequently
        as a task with ticket=1'."""
        s = StrideScheduler()
        s.add_task("heavy", tickets=2)
        s.add_task("light", tickets=1)
        counts = s.dispatch_counts(300)
        assert counts["heavy"] == pytest.approx(200, abs=2)
        assert counts["light"] == pytest.approx(100, abs=2)

    @given(
        tickets=st.lists(st.integers(1, 8), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_share_error_bounded(self, tickets):
        """Stride scheduling's throughput error is O(1) dispatches."""
        s = StrideScheduler()
        for i, tk in enumerate(tickets):
            s.add_task(f"t{i}", tickets=tk)
        total = sum(tickets)
        n = 50 * total
        counts = s.dispatch_counts(n)
        for i, tk in enumerate(tickets):
            expected = n * tk / total
            assert abs(counts[f"t{i}"] - expected) <= len(tickets) + 1

    def test_dispatch_counts_does_not_mutate(self):
        s = StrideScheduler()
        s.add_task("a")
        s.add_task("b")
        before = [(t.name, t.passes) for t in s.tasks()]
        s.dispatch_counts(100)
        after = [(t.name, t.passes) for t in s.tasks()]
        assert before == after


class TestManagement:
    def test_duplicate_task_rejected(self):
        s = StrideScheduler()
        s.add_task("a")
        with pytest.raises(ValueError):
            s.add_task("a")

    def test_remove_task(self):
        s = StrideScheduler()
        s.add_task("a")
        s.add_task("b")
        s.remove_task("a")
        assert [t.name for t in s.tasks()] == ["b"]

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            StrideScheduler().remove_task("x")

    def test_empty_dispatch_raises(self):
        with pytest.raises(RuntimeError):
            StrideScheduler().dispatch()

    def test_peek_does_not_advance(self):
        s = StrideScheduler()
        s.add_task("a")
        s.add_task("b")
        assert s.peek().name == "a"
        assert s.peek().name == "a"
        assert s.dispatch().name == "a"

    def test_payload_attached(self):
        s = StrideScheduler()
        marker = object()
        s.add_task("a", payload=marker)
        assert s.task("a").payload is marker

    def test_worst_case_gap_general(self):
        s = StrideScheduler()
        s.add_task("a", tickets=1)
        s.add_task("b", tickets=3)
        # total 4 tickets; a's gap bounded by ceil(4/1)+1 = 5.
        assert s.worst_case_gap("a") == 5
