"""Source output ports: work-conserving FIFO and priority disciplines."""

import pytest

from repro.sim.engine import EventEngine
from repro.sim.host import OutputPort
from repro.switch.queues import QueuedFrame


def frame(prio=0, packet=0, bits=10_000):
    return QueuedFrame(
        flow="f", wire_bits=bits, priority=prio, packet_id=packet,
        fragment=0, n_fragments=1,
    )


def make_port(discipline="fifo", speed=1e6):
    engine = EventEngine()
    delivered = []
    port = OutputPort(
        engine,
        speed_bps=speed,
        prop_delay=0.0,
        deliver=lambda f: delivered.append((engine.now, f)),
        discipline=discipline,
    )
    return engine, port, delivered


class TestFifoDiscipline:
    def test_order_preserved(self):
        engine, port, delivered = make_port("fifo")
        port.enqueue(frame(prio=0, packet=1))
        port.enqueue(frame(prio=9, packet=2))  # priority ignored
        engine.run()
        assert [f.packet_id for _, f in delivered] == [1, 2]

    def test_work_conserving(self):
        """The link never idles while frames are queued."""
        engine, port, delivered = make_port("fifo", speed=1e6)
        for i in range(3):
            port.enqueue(frame(packet=i, bits=10_000))
        engine.run()
        times = [t for t, _ in delivered]
        assert times == [pytest.approx(0.01 * (i + 1)) for i in range(3)]


class TestPriorityDiscipline:
    def test_priority_order(self):
        engine, port, delivered = make_port("priority")
        # First frame starts transmitting immediately; among the queued
        # rest, highest priority leaves first.
        port.enqueue(frame(prio=1, packet=1))
        port.enqueue(frame(prio=2, packet=2))
        port.enqueue(frame(prio=8, packet=3))
        engine.run()
        assert [f.packet_id for _, f in delivered] == [1, 3, 2]


class TestValidation:
    def test_unknown_discipline(self):
        with pytest.raises(ValueError):
            make_port("lifo")

    def test_backlog_counter(self):
        engine, port, delivered = make_port()
        port.enqueue(frame(packet=1, bits=1_000_000))  # long transmission
        port.enqueue(frame(packet=2))
        assert port.backlog() == 1  # first already at the NIC
