"""Flow objects: route navigation (succ/prec), priorities, hep/lp sets."""

import pytest

from repro.model.flow import (
    Flow,
    Transport,
    check_unique_names,
    flows_on_link,
    hep_flows,
    lp_flows,
)
from repro.model.gmf import sporadic_spec


def make_flow(name="f", route=("h0", "s0", "s1", "h2"), priority=3, **kw):
    return Flow(
        name=name,
        spec=sporadic_spec(period=0.02, deadline=0.05, payload_bits=1000),
        route=route,
        priority=priority,
        **kw,
    )


class TestRouteNavigation:
    def test_source_destination(self):
        f = make_flow()
        assert f.source == "h0"
        assert f.destination == "h2"

    def test_succ(self):
        f = make_flow()
        assert f.succ("h0") == "s0"
        assert f.succ("s1") == "h2"

    def test_succ_of_destination_raises(self):
        with pytest.raises(ValueError, match="destination"):
            make_flow().succ("h2")

    def test_prec(self):
        f = make_flow()
        assert f.prec("s0") == "h0"

    def test_prec_of_source_raises(self):
        with pytest.raises(ValueError, match="source"):
            make_flow().prec("h0")

    def test_off_route_node_raises(self):
        with pytest.raises(ValueError, match="not on route"):
            make_flow().succ("h9")

    def test_uses_link_directional(self):
        f = make_flow()
        assert f.uses_link("s0", "s1")
        assert not f.uses_link("s1", "s0")

    def test_links_in_order(self):
        assert make_flow().links() == [("h0", "s0"), ("s0", "s1"), ("s1", "h2")]

    def test_intermediate_switches(self):
        assert make_flow().intermediate_switches() == ("s0", "s1")

    def test_hops(self):
        assert make_flow().hops() == 3

    def test_short_route_rejected(self):
        with pytest.raises(ValueError):
            make_flow(route=("h0",))

    def test_loop_route_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            make_flow(route=("h0", "s0", "h0"))


class TestPriorities:
    def test_default_priority_everywhere(self):
        f = make_flow(priority=4)
        assert f.priority_on("h0", "s0") == 4
        assert f.priority_on("s1", "h2") == 4

    def test_per_link_override(self):
        f = make_flow(priority=4, link_priorities={("s0", "s1"): 6})
        assert f.priority_on("s0", "s1") == 6
        assert f.priority_on("h0", "s0") == 4

    def test_override_off_route_rejected(self):
        with pytest.raises(ValueError, match="not on its route"):
            make_flow(link_priorities={("s1", "s0"): 2})

    def test_priority_on_foreign_link_raises(self):
        with pytest.raises(ValueError):
            make_flow().priority_on("h1", "s0")

    def test_with_priority_copies(self):
        f = make_flow(priority=1)
        g = f.with_priority(9)
        assert g.priority == 9 and f.priority == 1
        assert g.route == f.route

    def test_with_spec_replaces_spec(self):
        f = make_flow()
        new_spec = sporadic_spec(period=0.5, deadline=1.0, payload_bits=64)
        g = f.with_spec(new_spec)
        assert g.spec.tsum == pytest.approx(0.5)
        assert g.name == f.name


class TestFlowSets:
    def setup_method(self):
        self.a = make_flow("a", priority=5)
        self.b = make_flow("b", priority=5)
        self.c = make_flow("c", priority=2)
        self.d = make_flow("d", route=("h1", "s0", "s1", "h3"), priority=9)
        self.flows = [self.a, self.b, self.c, self.d]

    def test_flows_on_link(self):
        shared = flows_on_link(self.flows, "s0", "s1")
        assert {f.name for f in shared} == {"a", "b", "c", "d"}
        first = flows_on_link(self.flows, "h0", "s0")
        assert {f.name for f in first} == {"a", "b", "c"}

    def test_hep_includes_equal_priority(self):
        hep = hep_flows(self.flows, self.a, "s0", "s1")
        assert {f.name for f in hep} == {"b", "d"}

    def test_hep_excludes_self(self):
        hep = hep_flows(self.flows, self.a, "s0", "s1")
        assert all(f.name != "a" for f in hep)

    def test_lp_strictly_lower(self):
        lp = lp_flows(self.flows, self.a, "s0", "s1")
        assert {f.name for f in lp} == {"c"}

    def test_hep_lp_partition(self):
        """Eq. 2/3: hep and lp partition the other flows on the link."""
        hep = {f.name for f in hep_flows(self.flows, self.a, "s0", "s1")}
        lp = {f.name for f in lp_flows(self.flows, self.a, "s0", "s1")}
        assert hep | lp == {"b", "c", "d"}
        assert hep & lp == set()

    def test_unique_names_ok(self):
        check_unique_names(self.flows)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            check_unique_names([self.a, make_flow("a")])


class TestTransport:
    def test_default_udp(self):
        assert make_flow().transport is Transport.UDP

    def test_describe(self):
        text = make_flow("video").describe()
        assert "video" in text and "h0->s0" in text
