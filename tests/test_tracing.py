"""Request tracing, the flight recorder, and live watch records.

The contracts under test, in dependency order:

* **Tracer semantics** — bounded ring, id minting, stack-based
  parenting, explicit wire contexts winning over the stack, and an
  ``__exit__`` that never raises even over an unbalanced stack.
* **Zero overhead when disabled** — mirrors the registry contract: the
  module helpers must not allocate while ``TRACER`` is ``None``.
* **Wire propagation** — the additive protocol ``trace`` field, the
  server's echo, and worker processes recording spans under the
  client's trace id, including on a *respawned* incarnation after a
  supervised kill (the ISSUE-9 acceptance bar).
* **Chrome export** — ``to_chrome_trace`` output loads as trace-event
  JSON with one track per (process, incarnation).
* **Monotone merged telemetry + untorn watch records** — polling
  ``metrics`` over TCP while a fault plan kills workers never shows a
  counter regressing, and every polled ``watch`` RunRecord survives a
  store round-trip intact.
"""

import asyncio
import gc
import json
import sys

import pytest

from repro import telemetry
from repro.cli import _watch_record, main
from repro.service import (
    AdmissionServer,
    FaultPlan,
    ProtocolError,
    Request,
    ShardedAdmissionService,
    encode_line,
    replay_service,
    request_from_dict,
    request_to_dict,
    trace_from_scenario,
)
from repro.telemetry import tracing
from repro.telemetry.store import load_runs
from repro.telemetry.tracing import (
    DEFAULT_CAPACITY,
    FLIGHT_VERSION,
    NULL_SPAN,
    Tracer,
    load_flight_record,
    to_chrome_trace,
    validate_chrome_trace,
    write_flight_record,
)
from test_service import call_flow, two_star_scenario


@pytest.fixture(autouse=True)
def _tracing_disabled_by_default():
    """Tests manage activation explicitly; never leak tracer/registry."""
    tr_before, reg_before = tracing.TRACER, telemetry.REGISTRY
    yield
    tracing.TRACER = tr_before
    telemetry.REGISTRY = reg_before


def _two_star_service(**kwargs):
    sc = two_star_scenario()
    svc = ShardedAdmissionService(
        sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
        workers=True, **kwargs,
    )
    return sc, svc


# ----------------------------------------------------------------------
# Tracer unit semantics
# ----------------------------------------------------------------------
class TestTracer:
    def test_ring_is_bounded_and_counts_drops(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.record(name=f"s{i}", trace="t", ts=float(i), dur=0.001)
        assert len(tr.spans) == 4
        assert tr.dropped == 6
        assert [s["name"] for s in tr.snapshot()] == ["s6", "s7", "s8", "s9"]

    def test_nested_spans_share_trace_and_parent(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert inner._trace == outer._trace
                assert inner._parent == outer._span
        outer_rec, = [s for s in tr.snapshot() if s["name"] == "outer"]
        inner_rec, = [s for s in tr.snapshot() if s["name"] == "inner"]
        assert inner_rec["trace"] == outer_rec["trace"]
        assert inner_rec["parent"] == outer_rec["span"]
        assert "parent" not in outer_rec  # fresh root

    def test_explicit_wire_context_wins_over_stack(self):
        tr = Tracer()
        with tr.span("ambient"):
            with tr.span("wired", trace={"id": "t-wire", "span": "s-up"}):
                pass
        rec, = [s for s in tr.snapshot() if s["name"] == "wired"]
        assert rec["trace"] == "t-wire"
        assert rec["parent"] == "s-up"

    def test_current_context_and_annotate(self):
        tr = Tracer()
        assert tr.current_context() is None
        with tr.span("work") as span:
            assert tr.current_context() == span.context
            tr.annotate("fp.solves")
            tr.annotate("fp.solves", 2.0)
        rec, = tr.snapshot()
        assert rec["tags"] == {"fp.solves": 3.0}
        tr.annotate("ghost")  # no open span: must be a silent no-op

    def test_exit_records_error_tag_and_never_raises(self):
        tr = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tr.span("fail"):
                raise RuntimeError("boom")
        rec, = tr.snapshot()
        assert rec["tags"]["error"] == 1.0
        assert tr._stack == []

    def test_exit_survives_unbalanced_stack(self):
        tr = Tracer()
        with tr.span("outer"):
            tr._stack.clear()  # simulate a harness disturbing the stack
        assert [s["name"] for s in tr.snapshot()] == ["outer"]
        assert tr._stack == []

    def test_ids_embed_pid_and_never_repeat(self):
        tr = Tracer()
        minted = {tr.mint_trace() for _ in range(100)}
        minted |= {tr.mint_span() for _ in range(100)}
        assert len(minted) == 200

    def test_drain_empties_extend_refills(self):
        worker = Tracer(proc="shard0")
        worker.record(name="shard.request", trace="t1", ts=1.0, dur=0.01)
        shipped = worker.drain()
        assert worker.snapshot() == []
        parent = Tracer(proc="server")
        parent.extend(shipped)
        rec, = parent.snapshot()
        assert rec["proc"] == "shard0"  # provenance survives the merge

    def test_enable_is_idempotent_and_disable_returns_tracer(self):
        assert not tracing.tracing_enabled()
        tr = tracing.enable_tracing(proc="test")
        assert tracing.enable_tracing() is tr
        assert tracing.disable_tracing() is tr
        assert tracing.TRACER is None

    def test_module_helpers_noop_when_disabled(self):
        tracing.TRACER = None
        assert tracing.span("x") is NULL_SPAN
        assert tracing.span("x") is tracing.span("y")
        assert tracing.current_context() is None
        tracing.annotate("k")  # must not raise
        with NULL_SPAN as s:
            s.annotate("k")
            assert s.context is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)
        assert Tracer().capacity == DEFAULT_CAPACITY

    def test_disabled_path_allocates_nothing(self):
        """The tracing no-op joins the registry's zero-overhead bar."""
        tracing.TRACER = None
        for _ in range(16):
            with tracing.span("z"):
                pass
            tracing.annotate("k")
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            with tracing.span("z"):
                pass
            tracing.annotate("k")
        gc.collect()
        assert sys.getallocatedblocks() - before < 50


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
class TestChromeExport:
    def _spans(self):
        return [
            {"trace": "t1", "span": "s1", "name": "server.admit",
             "proc": "server", "inc": 0, "ts": 1.0, "dur": 0.002},
            {"trace": "t1", "span": "s2", "parent": "s1",
             "name": "shard.request", "proc": "shard0", "inc": 0,
             "ts": 1.001, "dur": 0.001, "tags": {"fp.solves": 2.0}},
            {"trace": "t1", "span": "s3", "name": "shard.request",
             "proc": "shard0", "inc": 1, "ts": 1.01, "dur": 0.001},
        ]

    def test_one_track_per_incarnation(self):
        doc = to_chrome_trace(self._spans())
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names == {"server", "shard0", "shard0 (incarnation 1)"}
        # Distinct synthetic pids -> distinct tracks in the viewer.
        pids = {
            ev["pid"] for ev in doc["traceEvents"] if ev["ph"] == "X"
        }
        assert len(pids) == 3

    def test_events_carry_ids_and_tags_in_args(self):
        doc = to_chrome_trace(self._spans())
        ev, = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"].get("parent") == "s1"
        ]
        assert ev["args"]["trace"] == "t1"
        assert ev["args"]["fp.solves"] == 2.0
        assert ev["cat"] == "shard"
        assert ev["ts"] == pytest.approx(1.001e6)
        assert ev["dur"] >= 0.001  # never zero-width

    def test_export_validates_and_is_json(self):
        doc = to_chrome_trace(self._spans())
        complete = validate_chrome_trace(json.loads(json.dumps(doc)))
        assert len(complete) == 3

    def test_validate_refuses_malformed(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([1, 2])
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="missing 'ph'"):
            validate_chrome_trace({"traceEvents": [{"name": "x", "pid": 1}]})
        with pytest.raises(ValueError, match="numeric 'dur'"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "ts": 1.0}
                ]}
            )


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_write_load_roundtrip(self, tmp_path):
        path = write_flight_record(
            tmp_path / "flights",
            reason="worker_death",
            shard=1,
            incarnation=0,
            restarts=2,
            journal={"len": 7, "limit": 256, "baseline_flows": 3},
            spans=[{"trace": "t", "span": "s", "name": "n",
                    "proc": "shard1", "inc": 0, "ts": 1.0, "dur": 0.1}],
            registry={"v": 1, "counters": {"c": 1.0}, "histograms": {}},
        )
        doc = load_flight_record(path)
        assert doc["v"] == FLIGHT_VERSION
        assert doc["reason"] == "worker_death"
        assert doc["shard"] == 1 and doc["restarts"] == 2
        assert doc["journal"]["len"] == 7
        assert len(doc["spans"]) == 1
        assert doc["registry"]["counters"]["c"] == 1.0
        assert "flight_shard1_r2_worker_death.json" in path

    def test_keeps_only_last_n_spans(self, tmp_path):
        spans = [
            {"trace": "t", "span": f"s{i}", "name": "n", "ts": float(i),
             "dur": 0.0}
            for i in range(10)
        ]
        path = write_flight_record(
            tmp_path, reason="degraded", shard=0, incarnation=1,
            restarts=5, journal={}, spans=spans, max_spans=4,
        )
        doc = load_flight_record(path)
        assert [s["span"] for s in doc["spans"]] == ["s6", "s7", "s8", "s9"]
        assert doc["spans_dropped"] == 6

    def test_refuses_newer_or_foreign_documents(self, tmp_path):
        newer = tmp_path / "newer.json"
        newer.write_text(json.dumps(
            {"v": FLIGHT_VERSION + 1, "kind": "flight_record"}
        ))
        with pytest.raises(ValueError, match="newer"):
            load_flight_record(newer)
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"kind": "snapshot"}))
        with pytest.raises(ValueError, match="not a flight-record"):
            load_flight_record(foreign)


# ----------------------------------------------------------------------
# Protocol propagation
# ----------------------------------------------------------------------
class TestProtocolTrace:
    def test_trace_field_round_trips(self):
        req = Request(
            op="admit", id=3,
            flow=call_flow("a", ("sw0_a", "sw0", "sw0_b")),
            trace={"id": "t-7", "span": "s-2"},
        )
        doc = request_to_dict(req)
        assert doc["trace"] == {"id": "t-7", "span": "s-2"}
        back = request_from_dict(json.loads(json.dumps(doc)))
        assert back.trace == {"id": "t-7", "span": "s-2"}

    def test_untraced_requests_stay_untraced(self):
        req = Request(op="stats", id=0)
        doc = request_to_dict(req)
        assert "trace" not in doc
        assert request_from_dict(doc).trace is None

    def test_malformed_trace_refused(self):
        base = {"v": 2, "op": "stats", "id": 0}
        with pytest.raises(ProtocolError, match="must be an object"):
            request_from_dict({**base, "trace": "t-7"})
        with pytest.raises(ProtocolError, match="non-empty string 'id'"):
            request_from_dict({**base, "trace": {"span": "s"}})
        with pytest.raises(ProtocolError, match="non-empty string 'id'"):
            request_from_dict({**base, "trace": {"id": ""}})


# ----------------------------------------------------------------------
# End-to-end: server echo, worker spans, respawned incarnations
# ----------------------------------------------------------------------
async def _serve(svc, **server_kwargs):
    server = AdmissionServer(svc, port=0, **server_kwargs)
    await server.start()
    return server


class TestEndToEnd:
    def test_server_adopts_client_trace_and_echoes(self):
        sc = two_star_scenario()
        tracing.enable_tracing(proc="server")

        async def run():
            svc = ShardedAdmissionService(
                sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
            )
            server = await _serve(svc)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                reqs = [
                    request_to_dict(Request(
                        op="admit", id=0,
                        flow=call_flow("a", ("sw0_a", "sw0", "sw0_b")),
                        trace={"id": "client-trace-1"},
                    )),
                    request_to_dict(Request(op="stats", id=1)),
                ]
                for doc in reqs:
                    writer.write(encode_line(doc))
                await writer.drain()
                docs = [json.loads(await reader.readline()) for _ in reqs]
                writer.close()
                await writer.wait_closed()
                return docs
            finally:
                await server.stop()
                svc.close()

        admit_doc, stats_doc = asyncio.run(run())
        # The client's trace id is adopted and echoed with the server's
        # span id; a traceless request gets a server-minted trace.
        assert admit_doc["trace"]["id"] == "client-trace-1"
        assert admit_doc["trace"]["span"]
        assert stats_doc["trace"]["id"].startswith("t")
        spans = tracing.TRACER.snapshot()
        server_admit, = [s for s in spans if s["name"] == "server.admit"]
        assert server_admit["trace"] == "client-trace-1"
        shard_spans = [
            s for s in spans
            if s["name"] == "shard.request" and s["trace"] == "client-trace-1"
        ]
        assert shard_spans, "inline shard must record under the wire trace"
        admission = [
            s for s in spans
            if s["name"] == "admission.request"
            and s["trace"] == "client-trace-1"
        ]
        assert admission, "controller span must nest under the shard span"
        assert admission[0]["parent"] == shard_spans[0]["span"]

    def test_worker_spans_cross_process_with_solver_attribution(self):
        telemetry.enable()
        tracing.enable_tracing(proc="server")
        sc, svc = _two_star_service()
        try:
            with svc:
                svc.process_batch([
                    Request(
                        op="admit", id=i,
                        flow=call_flow(f"f{i}", ("sw0_a", "sw0", "sw0_b")),
                        trace={"id": f"wire-{i}"},
                    )
                    for i in range(3)
                ])
                spans = svc.metrics()["trace_spans"]
        finally:
            svc.close()
        worker = [s for s in spans if s["proc"] == "shard0"]
        assert {s["trace"] for s in worker if s["name"] == "shard.request"} \
            == {"wire-0", "wire-1", "wire-2"}
        admissions = [s for s in worker if s["name"] == "admission.request"]
        assert admissions
        # Fixed-point solver work is attributed onto the decision span.
        assert any(
            s.get("tags", {}).get("fp.solves", 0) >= 1 for s in admissions
        )
        assert all(s.get("tags", {}).get("accepted") in (0.0, 1.0)
                   for s in admissions)

    def test_respawned_incarnation_shares_retried_trace_ids(self):
        """The acceptance bar: after a supervised kill, the replacement
        incarnation's spans carry the *original* requests' trace ids —
        the export shows server -> shard -> respawned shard."""
        telemetry.enable()
        tracing.enable_tracing(proc="server")
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=40, arrival="burst", burst_size=8, hold=10,
            seed=2,
        )
        plan = FaultPlan.parse("kill:shard=0,at=5;kill:shard=1,at=7")
        svc = ShardedAdmissionService(
            sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
            workers=True, fault_plan=plan, journal_limit=8,
        )
        try:
            replay_service(svc, trace, batch=8)
            assert svc.health()["restarts"] == 2
            spans = svc.metrics()["trace_spans"]
        finally:
            svc.close()
        for shard in ("shard0", "shard1"):
            incs = {s["inc"] for s in spans if s["proc"] == shard}
            assert {0, 1} <= incs, f"{shard}: both incarnations must record"
        recoveries = [s for s in spans if s["name"] == "shard.recovery"]
        assert len(recoveries) == 2
        assert all(r["inc"] == 1 for r in recoveries)
        # Replacement-incarnation op spans re-ran under the original
        # (replay-minted) trace ids of the in-flight requests.
        respawned = [
            s for s in spans
            if s["inc"] >= 1 and s["name"].startswith("shard.")
            and s["name"] != "shard.recovery"
        ]
        assert any(
            str(s["trace"]).startswith(trace.name) for s in respawned
        )
        # And the whole set renders as a valid Chrome trace with the
        # track split visible.
        doc = to_chrome_trace(spans)
        validate_chrome_trace(doc)
        labels = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert "shard0" in labels and "shard0 (incarnation 1)" in labels

    def test_decisions_identical_with_tracing_on(self):
        """Tracing is observation-only: same decisions, bit for bit."""
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=30, arrival="burst", burst_size=6, hold=8,
            seed=4,
        )

        def run():
            svc = ShardedAdmissionService(
                sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
            )
            try:
                return replay_service(svc, trace, batch=8).admit_decisions
            finally:
                svc.close()

        tracing.TRACER = None
        clean = run()
        tracing.enable_tracing(proc="server")
        traced = run()
        assert traced == clean


# ----------------------------------------------------------------------
# Satellite: monotone merged metrics under kills; untorn watch records
# ----------------------------------------------------------------------
class TestMetricsUnderFaults:
    def test_merged_counters_monotone_across_kill_and_watch_untorn(
        self, tmp_path
    ):
        """Poll ``metrics`` over TCP while a fault plan kills a worker:
        merged counters never regress (the dead incarnation's last
        snapshot is retired, not dropped), and every poll writes one
        whole ``watch`` RunRecord."""
        telemetry.enable()
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=60, arrival="burst", burst_size=6, hold=10,
            seed=3,
        )
        plan = FaultPlan.parse("kill:shard=0,at=5;kill:shard=1,at=9")

        async def run():
            from repro.service.replay import _request_over_tcp, replay_over_tcp

            svc = ShardedAdmissionService(
                sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1},
                workers=True, fault_plan=plan, journal_limit=8,
            )
            server = await _serve(svc)
            polls = []

            async def poller():
                while True:
                    stats = await _request_over_tcp(
                        "127.0.0.1", server.port, "stats"
                    )
                    metrics = await _request_over_tcp(
                        "127.0.0.1", server.port, "metrics"
                    )
                    polls.append((stats, metrics))
                    await asyncio.sleep(0.01)

            task = asyncio.create_task(poller())
            try:
                await replay_over_tcp(
                    "127.0.0.1", server.port, trace, window=6
                )
                # One final poll after the kills have fired.
                stats = await _request_over_tcp(
                    "127.0.0.1", server.port, "stats"
                )
                metrics = await _request_over_tcp(
                    "127.0.0.1", server.port, "metrics"
                )
                polls.append((stats, metrics))
                health = svc.health()
            finally:
                task.cancel()
                await server.stop()
                svc.close()
            return polls, health

        polls, health = asyncio.run(run())
        assert health["restarts"] == 2, "both kills must have fired"

        watched = [
            "admission.requests", "admission.accepted", "admission.rejected",
        ]
        previous = dict.fromkeys(watched, 0.0)
        for _, metrics in polls:
            counters = (metrics.get("merged") or {}).get("counters", {})
            for key in watched:
                value = counters.get(key, 0.0)
                assert value >= previous[key], (
                    f"{key} regressed across a shard incarnation: "
                    f"{previous[key]} -> {value}"
                )
                previous[key] = value
        assert previous["admission.requests"] > 0

        # Every poll becomes one whole record: the store round-trips
        # with nothing torn or interleaved.
        store = tmp_path / "watch.jsonl"
        from repro.telemetry.store import append_run

        for tick, (stats, metrics) in enumerate(polls):
            append_run(store, _watch_record(
                "live", stats=stats, metrics=metrics, tick=tick,
            ))
        records = load_runs(store, label="live")
        assert len(records) == len(polls)
        for tick, rec in enumerate(records):
            assert rec.kind == "watch"
            assert rec.metrics["watch.tick"] == float(tick)
            assert rec.telemetry is None or "counters" in rec.telemetry


# ----------------------------------------------------------------------
# Watch records and CLI surfaces
# ----------------------------------------------------------------------
class TestWatch:
    def test_watch_record_keeps_scalars_only(self):
        stats = {
            "offered": 10, "accepted": 8.0, "degraded": False,
            "stats_version": 2, "shard_flows": [5, 3],
            "telemetry": {"counters": {}},
        }
        metrics = {"merged": {"v": 1, "counters": {"c": 1.0}}}
        rec = _watch_record("lbl", stats=stats, metrics=metrics, tick=3)
        assert rec.kind == "watch"
        assert rec.metrics["service.offered"] == 10.0
        assert rec.metrics["service.accepted"] == 8.0
        assert rec.metrics["watch.tick"] == 3.0
        # Bools, lists and nested objects never leak into metrics.
        assert "service.degraded" not in rec.metrics
        assert "service.shard_flows" not in rec.metrics
        assert rec.telemetry == {"v": 1, "counters": {"c": 1.0}}

    def test_watch_campaign_scheduler_mode(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        assert main([
            "-q", "watch", "--campaign", "voip-star",
            "--grid", "n_calls=2", "--every", "0.01", "--count", "2",
            "--label", "nightly", "--store", str(store),
        ]) == 0
        records = load_runs(store, label="nightly")
        assert len(records) == 2
        for tick, rec in enumerate(records):
            assert rec.kind == "watch"
            assert rec.scenario == "voip-star"
            assert rec.metrics["campaign.scenarios"] == 1.0
            assert rec.metrics["campaign.ok_rows"] == 1.0
            assert rec.metrics["watch.tick"] == float(tick)
            assert rec.telemetry is not None
        # The standing scheduler feeds the same store as campaigns:
        # report --diff gates drift between two watch labels.
        assert main([
            "-q", "watch", "--campaign", "voip-star",
            "--grid", "n_calls=2", "--every", "0.01", "--count", "1",
            "--label", "nightly2", "--store", str(store),
        ]) == 0
        assert main([
            "report", "--diff", "nightly", "nightly2",
            "--store", str(store),
        ]) == 0

    def test_watch_validates_arguments(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["watch", "--label", "x"])
        with pytest.raises(SystemExit, match="exactly one"):
            main([
                "watch", "--connect", "h:1", "--campaign", "voip-star",
                "--label", "x",
            ])
        with pytest.raises(SystemExit, match="positive"):
            main([
                "watch", "--campaign", "voip-star", "--label", "x",
                "--every", "0",
            ])

    def test_trace_export_from_metrics_file(self, tmp_path, capsys):
        tracing.enable_tracing(proc="server")
        with tracing.span("server.admit", trace={"id": "t-cli"}):
            pass
        metrics = {"trace_spans": tracing.TRACER.snapshot()}
        src = tmp_path / "metrics.json"
        src.write_text(json.dumps(metrics))
        out = tmp_path / "trace.json"
        assert main([
            "trace-export", "--from", str(src), "-o", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        events = validate_chrome_trace(doc)
        assert events[0]["args"]["trace"] == "t-cli"
        assert "1 span(s)" in capsys.readouterr().out

    def test_trace_export_refuses_spanless_source(self, tmp_path):
        src = tmp_path / "metrics.json"
        src.write_text(json.dumps({"merged": None}))
        with pytest.raises(SystemExit, match="no trace spans"):
            main(["trace-export", "--from", str(src), "-o", "x.json"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["trace-export"])
