"""Weighted-stride extension: per-interface tickets (beyond the paper).

The paper restricts stride scheduling to all-tickets-equal round-robin
(footnote 1); this extension gives latency-critical interfaces more
tickets.  Tests cover the analysis bound (conservative per-interface
service period), the simulator's faithful stride dispatch, and the
soundness of the combination.
"""

import math

import pytest

from repro.core.context import AnalysisContext
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network, SwitchConfig
from repro.sim.simulator import SimConfig, simulate
from repro.util.units import mbps, ms, us


def weighted_net(tickets=(("h0", 4),), c_route=us(27), c_send=us(10)):
    net = Network()
    for h in ("h0", "h1", "h2"):
        net.add_endhost(h)
    net.add_switch(
        "sw",
        SwitchConfig(
            c_route=c_route, c_send=c_send, interface_tickets=tuple(tickets)
        ),
    )
    for h in ("h0", "h1", "h2"):
        net.add_duplex_link(h, "sw", speed_bps=mbps(100))
    return net


def make_flow(route, name="f", payload=10_000, period=ms(20)):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(period,),
            deadlines=(ms(200),),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=3,
    )


class TestConfigValidation:
    def test_tickets_below_one_rejected(self):
        with pytest.raises(ValueError):
            SwitchConfig(interface_tickets=(("a", 0),))

    def test_duplicate_interface_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SwitchConfig(interface_tickets=(("a", 2), ("a", 3)))

    def test_multiproc_combination_rejected(self):
        with pytest.raises(ValueError, match="single-processor"):
            SwitchConfig(n_processors=2, interface_tickets=(("a", 2),))

    def test_unknown_interface_in_service_bound(self):
        cfg = SwitchConfig(interface_tickets=(("a", 2),))
        with pytest.raises(ValueError, match="unknown interface"):
            cfg.service_bound(["a", "b"], "zz")


class TestServiceBound:
    def test_round_robin_uses_exact_circ(self):
        cfg = SwitchConfig()
        assert cfg.service_bound(["a", "b", "c", "d"], "a") == pytest.approx(
            cfg.circ(4)
        )

    def test_more_tickets_smaller_bound(self):
        cfg = SwitchConfig(interface_tickets=(("a", 4),))
        interfaces = ["a", "b", "c"]
        assert cfg.service_bound(interfaces, "a") < cfg.service_bound(
            interfaces, "b"
        )

    def test_bound_formula(self):
        """gap = ceil(W/w) + 1 dispatches of at most max(CROUTE, CSEND)."""
        cfg = SwitchConfig(
            c_route=us(2.7), c_send=us(1.0), interface_tickets=(("a", 3),)
        )
        interfaces = ["a", "b"]  # W = 2*(3+1) = 8
        assert cfg.service_bound(interfaces, "a") == pytest.approx(
            (math.ceil(8 / 3) + 1) * us(2.7)
        )
        assert cfg.service_bound(interfaces, "b") == pytest.approx(
            (8 + 1) * us(2.7)
        )

    def test_network_circ_task(self):
        net = weighted_net()
        assert net.circ_task("sw", "h0") < net.circ_task("sw", "h1")

    def test_round_robin_network_unchanged(self, one_switch_net):
        """Default config: circ_task == circ on every interface."""
        for itf in ("h0", "h1", "h2"):
            assert one_switch_net.circ_task("sw", itf) == pytest.approx(
                one_switch_net.circ("sw")
            )


class TestAnalysisWithWeights:
    def test_prioritised_interface_gets_smaller_bound(self):
        """A flow entering via the 4-ticket interface beats the same
        flow entering via a 1-ticket interface."""
        net = weighted_net(tickets=(("h0", 4),))
        fast = make_flow(("h0", "sw", "h2"), "fast")
        slow = make_flow(("h1", "sw", "h2"), "slow")
        res = holistic_analysis(net, [fast, slow])
        assert res.response("fast") < res.response("slow")

    def test_weighted_ingress_bound_reflects_tickets(self):
        from repro.core.switch_ingress import ingress_response_time

        net = weighted_net(tickets=(("h0", 4),))
        fast = make_flow(("h0", "sw", "h2"), "fast")
        ctx = AnalysisContext(net, [fast])
        res = ingress_response_time(ctx, fast, 0, "sw")
        assert res.response == pytest.approx(
            ctx.circ_task("sw", "h0")  # single-fragment packet
        )


class TestSimulationWithWeights:
    def test_weighted_switch_delivers(self):
        net = weighted_net()
        flows = [
            make_flow(("h0", "sw", "h2"), "fast", period=ms(10)),
            make_flow(("h1", "sw", "h2"), "slow", period=ms(10)),
        ]
        trace = simulate(net, flows, duration=0.5)
        assert trace.count_completed("fast") > 0
        assert trace.count_completed("slow") > 0
        assert trace.count_incomplete() == 0

    def test_rotation_mode_rejected_for_weighted(self):
        net = weighted_net()
        with pytest.raises(ValueError, match="round-robin"):
            simulate(
                net,
                [make_flow(("h0", "sw", "h2"))],
                config=SimConfig(duration=0.1, switch_mode="rotation"),
            )

    def test_bounds_dominate_weighted_simulation(self):
        """Soundness holds for weighted configurations too."""
        net = weighted_net(tickets=(("h0", 4), ("h2", 2)))
        flows = [
            make_flow(("h0", "sw", "h2"), "a", payload=60_000, period=ms(10)),
            make_flow(("h1", "sw", "h2"), "b", payload=30_000, period=ms(10)),
        ]
        analysis = holistic_analysis(net, flows)
        assert analysis.converged
        trace = simulate(net, flows, duration=1.0)
        for f in flows:
            observed = trace.worst_response(f.name)
            bound = analysis.result(f.name).worst_response
            assert observed <= bound + 1e-9

    def test_stride_order_respected(self):
        """Under processor saturation, the high-ticket path forwards
        more frames per unit time than the low-ticket path.

        The paths must be fully disjoint (separate ingress *and* egress
        interfaces), otherwise a shared egress task equalises them.
        """
        net = Network()
        for h in ("h0", "h1", "h2", "h3"):
            net.add_endhost(h)
        net.add_switch(
            "sw",
            SwitchConfig(
                c_route=us(100),
                c_send=us(50),
                interface_tickets=(("h0", 4), ("h2", 4)),
            ),
        )
        for h in ("h0", "h1", "h2", "h3"):
            net.add_duplex_link(h, "sw", speed_bps=mbps(100))
        flows = [
            make_flow(("h0", "sw", "h2"), "fast", payload=512, period=ms(0.2)),
            make_flow(("h1", "sw", "h3"), "slow", payload=512, period=ms(0.2)),
        ]
        # No drain window: completion counts reflect live throughput.
        trace = simulate(
            net, flows, config=SimConfig(duration=0.25, drain_factor=0.0)
        )
        fast_done = trace.count_completed("fast")
        slow_done = trace.count_completed("slow")
        assert fast_done > 1.5 * slow_done
