"""Unit helpers: conversions and formatting."""

import math

import pytest

from repro.util.units import (
    bits_from_bytes,
    bytes_from_bits,
    fmt_duration,
    fmt_rate,
    gbps,
    mbps,
    ms,
    us,
)


class TestConversions:
    def test_us(self):
        assert us(2.7) == pytest.approx(2.7e-6)

    def test_ms(self):
        assert ms(30) == pytest.approx(0.030)

    def test_mbps(self):
        assert mbps(10) == 10_000_000

    def test_gbps(self):
        assert gbps(1) == 1_000_000_000

    def test_bits_from_bytes(self):
        assert bits_from_bytes(1500) == 12_000

    def test_bytes_from_bits_roundtrip(self):
        assert bytes_from_bits(bits_from_bytes(1538)) == 1538

    def test_paper_circ_example(self):
        """Sec. 3.3: 4 * (2.7 + 1.0) us = 14.8 us."""
        assert 4 * (us(2.7) + us(1.0)) == pytest.approx(14.8e-6)


class TestFormatting:
    def test_fmt_duration_seconds(self):
        assert fmt_duration(1.5) == "1.500 s"

    def test_fmt_duration_ms(self):
        assert fmt_duration(0.270) == "270.000 ms"

    def test_fmt_duration_us(self):
        assert fmt_duration(14.8e-6) == "14.800 us"

    def test_fmt_duration_ns(self):
        assert fmt_duration(5e-9) == "5.000 ns"

    def test_fmt_duration_nan(self):
        assert fmt_duration(float("nan")) == "nan"

    def test_fmt_rate_mbit(self):
        assert fmt_rate(10_000_000) == "10.000 Mbit/s"

    def test_fmt_rate_gbit(self):
        assert fmt_rate(1_000_000_000) == "1.000 Gbit/s"

    def test_fmt_rate_kbit(self):
        assert fmt_rate(64_000) == "64.000 kbit/s"

    def test_fmt_rate_bit(self):
        assert fmt_rate(300) == "300.000 bit/s"
