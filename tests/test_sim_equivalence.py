"""Fast simulation backend: not a single bit may move.

The fast backend (``SimConfig.fast``, on by default) layers three
optimisations over the reference simulator — vectorised release
precomputation bulk-loaded through the engine's ``schedule_many``, flat
per-packet completion/hop counters with trace records materialised at
finalisation, and (via the campaign) topology reuse through
:meth:`Simulator.rebind`.  All three are exactness-preserving by
construction: the release instants come from the identical IEEE-754
operations, the schedule order (hence every ``(time, sequence)``
tie-break) is unchanged, and a rebound topology is reset to its
freshly-built state.

These tests are the executable form of that claim, mirroring
``test_engine_equivalence.py`` for the analysis engine: across **every
registered scenario family**, both switch modes, and finite NIC FIFOs
(loss!), the fast backend's trace must be bit-identical (``==`` on
floats, no tolerance) to ``fast=False``; a rebound simulator must
reproduce a fresh build; and the campaign's batched simulate action
must return byte-identical payloads to the plain one.
"""

import hashlib
import json
from dataclasses import replace

import pytest

from repro.scenario.campaign import (
    CampaignRunner,
    action_simulate,
    action_simulate_batched,
)
from repro.scenario.registry import REGISTRY, build_scenario, scenario_grid
from repro.sim.simulator import SimConfig, Simulator, simulate
from repro.util.units import mbps
from repro.workloads.generator import random_flow_set
from repro.workloads.topologies import line_network

#: Scenario families are exercised at a reduced duration so the full
#: (family x mode) sweep stays test-suite friendly; the traces still
#: cover thousands of events each.
TEST_DURATION = 0.25


def record_tuple(p):
    """Every field of a PacketRecord, exactly."""
    return (
        p.packet_id,
        p.flow,
        p.frame,
        p.arrival,
        p.n_fragments,
        p.fragments_received,
        p.completed,
        tuple(p.node_arrivals.items()),  # values AND insertion order
    )


def assert_traces_bit_identical(a, b):
    assert a.duration == b.duration
    assert a.events_processed == b.events_processed
    assert len(a.packets) == len(b.packets)
    for pa, pb in zip(a.packets, b.packets):
        assert record_tuple(pa) == record_tuple(pb)


def trace_hash(trace) -> str:
    """Canonical digest of a trace (the CI smoke compares these)."""
    doc = {
        "duration": trace.duration,
        "events": trace.events_processed,
        "packets": [
            [
                p.packet_id,
                p.flow,
                p.frame,
                p.arrival.hex(),
                p.n_fragments,
                p.fragments_received,
                None if p.completed is None else p.completed.hex(),
                [[n, t.hex()] for n, t in p.node_arrivals.items()],
            ]
            for p in trace.packets
        ],
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()


def scenario_for(family: str):
    scenario = build_scenario(family)
    return replace(
        scenario, sim=replace(scenario.sim, duration=TEST_DURATION)
    )


def run_pair(network, flows, cfg):
    fast = simulate(network, flows, config=replace(cfg, fast=True))
    ref = simulate(network, flows, config=replace(cfg, fast=False))
    return fast, ref


# ----------------------------------------------------------------------
# Fast vs reference across every registered family and both modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(REGISTRY.names()))
@pytest.mark.parametrize("mode", ["event", "rotation"])
def test_fast_backend_bit_identical_per_family(family, mode):
    scenario = scenario_for(family)
    if not scenario.flows:
        pytest.skip(f"{family} carries only a churn workload")
    cfg = replace(scenario.sim, switch_mode=mode)
    fast, ref = run_pair(scenario.network, scenario.flows, cfg)
    assert fast.events_processed > 0
    assert_traces_bit_identical(fast, ref)


def test_fast_backend_bit_identical_finite_fifo_overload():
    """Loss regime: tiny NIC FIFOs under heavy load drop fragments in
    both backends at exactly the same points."""
    net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
    flows = random_flow_set(net, n_flows=6, total_utilization=3.0, seed=5)
    cfg = SimConfig(duration=0.2, nic_fifo_capacity=1)
    fast, ref = run_pair(net, flows, cfg)
    assert_traces_bit_identical(fast, ref)
    # The scenario must actually exercise loss to be meaningful.
    assert fast.count_incomplete() > 0


def test_fast_backend_bit_identical_priority_sources():
    net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
    flows = random_flow_set(net, n_flows=5, total_utilization=0.6, seed=9)
    cfg = SimConfig(duration=0.2, source_discipline="priority")
    fast, ref = run_pair(net, flows, cfg)
    assert_traces_bit_identical(fast, ref)


def test_fast_backend_smoke_hashes():
    """One scenario per family, fast vs reference trace hash — the CI
    sim-equivalence smoke step runs exactly this test."""
    for family in sorted(REGISTRY.names()):
        scenario = scenario_for(family)
        if not scenario.flows:
            continue
        fast, ref = run_pair(scenario.network, scenario.flows, scenario.sim)
        assert trace_hash(fast) == trace_hash(ref), family


# ----------------------------------------------------------------------
# Topology reuse: rebind == fresh build
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["event", "rotation"])
@pytest.mark.parametrize("fast", [True, False])
def test_rebind_matches_fresh_build(mode, fast):
    """One built topology re-run across flow sets and durations is
    bit-identical to building a simulator per run."""
    net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
    base = SimConfig(duration=0.2, switch_mode=mode, fast=fast)
    sim = None
    for i, seed in enumerate((7, 11, 13)):
        flows = random_flow_set(
            net, n_flows=5, total_utilization=0.4, seed=seed
        )
        cfg = replace(base, duration=0.2 + 0.05 * (i % 2))
        if sim is None:
            sim = Simulator(net, flows, cfg)
        else:
            sim.rebind(flows, cfg)
        fresh = Simulator(net, flows, cfg)
        assert_traces_bit_identical(sim.run(), fresh.run())


def test_rebind_rejects_topology_config_changes():
    net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
    flows = random_flow_set(net, n_flows=3, total_utilization=0.3, seed=1)
    sim = Simulator(net, flows, SimConfig(duration=0.1))
    with pytest.raises(ValueError, match="baked into the built topology"):
        sim.rebind(flows, SimConfig(duration=0.1, switch_mode="rotation"))


# ----------------------------------------------------------------------
# Campaign: batched simulate == plain simulate
# ----------------------------------------------------------------------
def test_batched_simulate_action_matches_plain():
    specs = scenario_grid(
        "random-line", seed=[0, 1, 2], n_flows=3, duration=0.2
    )
    plain = CampaignRunner(actions=(action_simulate,)).run(specs)
    batched = CampaignRunner(actions=(action_simulate_batched,)).run(specs)
    assert len(plain) == len(batched) == 3
    for p, b in zip(plain, batched):
        assert p.payload == b.payload


def test_batched_simulate_reuses_one_simulator(monkeypatch):
    """Same-topology grid points build the simulator once."""
    import repro.scenario.campaign as campaign

    campaign._SIM_CACHE.clear()
    builds = []
    original = campaign.Simulator

    class CountingSimulator(original):
        def __init__(self, *args, **kwargs):
            builds.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(campaign, "Simulator", CountingSimulator)
    specs = scenario_grid(
        "random-line", seed=[0, 1, 2, 3], n_flows=3, duration=0.2
    )
    CampaignRunner(actions=(action_simulate_batched,)).run(specs)
    assert sum(builds) == 1
    campaign._SIM_CACHE.clear()
