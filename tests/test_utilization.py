"""Convergence conditions (Eqs. 20/34/35) and the network report."""

import pytest

from repro.core.context import AnalysisContext
from repro.core.utilization import (
    link_utilization,
    network_convergence_report,
)
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms


def make_flow(route, name, payload=100_000, prio=3, period=ms(20)):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(period,),
            deadlines=(ms(200),),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=prio,
    )


class TestLinkUtilization:
    def test_matches_demand_sum(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a"),
            make_flow(("h1", "s0", "s1", "h3"), "b"),
        ]
        ctx = AnalysisContext(two_switch_net, flows)
        u = link_utilization(ctx, "s0", "s1")
        expected = sum(
            ctx.demand(f, "s0", "s1").utilization for f in flows
        )
        assert u == pytest.approx(expected)

    def test_empty_link_zero(self, two_switch_net):
        ctx = AnalysisContext(two_switch_net, [])
        assert link_utilization(ctx, "s0", "s1") == 0.0


class TestNetworkReport:
    def test_covers_all_resources_of_route(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"), "a")
        ctx = AnalysisContext(two_switch_net, [flow])
        report = network_convergence_report(ctx)
        kinds = {e.resource[0] for e in report.entries}
        assert kinds == {"link", "in"}
        # first hop + 2 ingresses + 2 egress links = 5 resources
        assert len(report.entries) == 5

    def test_all_convergent_light_load(self, two_switch_net):
        flow = make_flow(("h0", "s0", "s1", "h2"), "a", payload=10_000)
        ctx = AnalysisContext(two_switch_net, [flow])
        report = network_convergence_report(ctx)
        assert report.all_convergent
        assert 0 < report.max_utilization < 1

    def test_bottleneck_identified(self, two_switch_net):
        """Both flows share s0->s1, which must be the bottleneck."""
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", prio=5),
            make_flow(("h1", "s0", "s1", "h3"), "b", prio=5),
        ]
        ctx = AnalysisContext(two_switch_net, flows)
        report = network_convergence_report(ctx)
        bn = report.bottleneck()
        assert bn.resource in (("link", "s0", "s1"),)

    def test_overload_flagged(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", payload=1_500_000),
            make_flow(("h1", "s0", "s1", "h3"), "b", payload=1_500_000),
        ]
        ctx = AnalysisContext(two_switch_net, flows)
        report = network_convergence_report(ctx)
        assert not report.all_convergent
        assert report.max_utilization >= 1.0

    def test_empty_flow_set(self, two_switch_net):
        ctx = AnalysisContext(two_switch_net, [])
        report = network_convergence_report(ctx)
        assert report.entries == ()
        assert report.all_convergent
        assert report.bottleneck() is None

    def test_egress_entry_uses_worst_hep(self, two_switch_net):
        """The egress utilisation recorded is the lowest-priority flow's
        view (own + everything above it)."""
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "hi", prio=9, payload=200_000),
            make_flow(("h1", "s0", "s1", "h3"), "lo", prio=1, payload=50_000),
        ]
        ctx = AnalysisContext(two_switch_net, flows)
        report = network_convergence_report(ctx)
        entry = next(
            e for e in report.entries if e.resource == ("link", "s0", "s1")
        )
        u_hi = ctx.demand(flows[0], "s0", "s1").utilization
        u_lo = ctx.demand(flows[1], "s0", "s1").utilization
        assert entry.utilization == pytest.approx(u_hi + u_lo)
