"""Holistic fixed point (Sec. 3.5) and its convergence behaviour."""

import math

import pytest

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms


def make_flow(route, name, payload=20_000, prio=3, period=ms(20), jitter=0.0):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(period,),
            deadlines=(ms(200),),
            jitters=(jitter,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=prio,
    )


class TestConvergence:
    def test_single_flow_converges_quickly(self, two_switch_net):
        res = holistic_analysis(
            two_switch_net, [make_flow(("h0", "s0", "s1", "h2"), "a")]
        )
        assert res.converged
        assert res.iterations <= 3

    def test_results_for_all_flows(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a"),
            make_flow(("h1", "s0", "s1", "h3"), "b"),
        ]
        res = holistic_analysis(two_switch_net, flows)
        assert set(res.flow_results) == {"a", "b"}

    def test_fixed_point_stable_under_rerun(self, two_switch_net):
        """Running the analysis twice gives identical bounds
        (determinism)."""
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", prio=5),
            make_flow(("h1", "s0", "s1", "h3"), "b", prio=2, jitter=ms(1)),
        ]
        r1 = holistic_analysis(two_switch_net, flows)
        r2 = holistic_analysis(two_switch_net, flows)
        for name in ("a", "b"):
            assert r1.response(name) == pytest.approx(r2.response(name))

    def test_interacting_flows_need_more_iterations(self, two_switch_net):
        """Cross-interference through jitter forces >= 2 iterations."""
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", prio=5, payload=100_000),
            make_flow(("h1", "s0", "s1", "h3"), "b", prio=5, payload=100_000),
        ]
        res = holistic_analysis(two_switch_net, flows)
        assert res.converged
        assert res.iterations >= 2

    def test_bounds_grow_with_jitter_iterations(self, two_switch_net):
        """The holistic bound is at least the zero-downstream-jitter
        first pass (monotone iteration)."""
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", prio=5, payload=100_000),
            make_flow(("h1", "s0", "s1", "h3"), "b", prio=5, payload=100_000),
        ]
        first_pass = holistic_analysis(
            two_switch_net,
            flows,
            AnalysisOptions(holistic_max_iterations=1),
        )
        full = holistic_analysis(two_switch_net, flows)
        for name in ("a", "b"):
            assert full.response(name) >= first_pass.response(name) - 1e-12


class TestDivergence:
    def test_overload_reported_unschedulable(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "victim", prio=1),
            make_flow(("h1", "s0", "s1", "h3"), "hog", prio=9,
                      payload=2_500_000),
        ]
        res = holistic_analysis(two_switch_net, flows)
        assert not res.converged
        assert not res.schedulable
        assert math.isinf(res.response("victim"))

    def test_divergence_stops_early(self, two_switch_net):
        """Monotone divergence must not burn the full iteration budget."""
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "victim", prio=1),
            make_flow(("h1", "s0", "s1", "h3"), "hog", prio=9,
                      payload=2_500_000),
        ]
        res = holistic_analysis(two_switch_net, flows)
        assert res.iterations <= 3


class TestResultAccessors:
    def test_response_accessor(self, two_switch_net, video_spec):
        flow = Flow("v", video_spec, ("h0", "s0", "s1", "h2"), priority=5)
        res = holistic_analysis(two_switch_net, [flow])
        assert res.response("v") == pytest.approx(
            res.result("v").worst_response
        )
        assert res.response("v", 1) == pytest.approx(
            res.result("v").frame(1).response
        )

    def test_summary_rows(self, two_switch_net):
        res = holistic_analysis(
            two_switch_net, [make_flow(("h0", "s0", "s1", "h2"), "a")]
        )
        rows = res.summary_rows()
        assert len(rows) == 1
        name, worst, slack, ok = rows[0]
        assert name == "a" and ok

    def test_unknown_flow_raises(self, two_switch_net):
        res = holistic_analysis(
            two_switch_net, [make_flow(("h0", "s0", "s1", "h2"), "a")]
        )
        with pytest.raises(KeyError):
            res.result("ghost")
