"""Discrete-event engine: ordering, determinism, causality."""

import math

import pytest

from repro.sim.engine import EventEngine


class TestOrdering:
    def test_time_order(self):
        eng = EventEngine()
        hits = []
        eng.schedule(2.0, lambda: hits.append("b"))
        eng.schedule(1.0, lambda: hits.append("a"))
        eng.schedule(3.0, lambda: hits.append("c"))
        eng.run()
        assert hits == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        eng = EventEngine()
        hits = []
        for i in range(5):
            eng.schedule(1.0, lambda i=i: hits.append(i))
        eng.run()
        assert hits == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        eng = EventEngine()
        seen = []
        eng.schedule(1.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [1.5]

    def test_events_scheduled_during_run(self):
        eng = EventEngine()
        hits = []

        def first():
            hits.append("first")
            eng.schedule_in(1.0, lambda: hits.append("second"))

        eng.schedule(1.0, first)
        eng.run()
        assert hits == ["first", "second"]
        assert eng.now == 2.0


class TestArgsScheduling:
    def test_callback_args_passed(self):
        eng = EventEngine()
        hits = []
        eng.schedule(1.0, hits.append, "a")
        eng.schedule_in(2.0, hits.append, "b")
        eng.run()
        assert hits == ["a", "b"]

    def test_args_and_closures_interleave_in_seq_order(self):
        eng = EventEngine()
        hits = []
        eng.schedule(1.0, hits.append, 0)
        eng.schedule(1.0, lambda: hits.append(1))
        eng.schedule(1.0, hits.append, 2)
        eng.run()
        assert hits == [0, 1, 2]

    def test_same_timestamp_batch_sees_new_events(self):
        # An event scheduled *at* the current timestamp from inside a
        # callback still fires within the same drain, in seq order.
        eng = EventEngine()
        hits = []

        def first():
            hits.append("first")
            eng.schedule(1.0, hits.append, "nested")

        eng.schedule(1.0, first)
        eng.schedule(1.0, hits.append, "second")
        eng.run()
        assert hits == ["first", "second", "nested"]
        assert eng.events_processed == 3


class TestCausality:
    def test_past_scheduling_rejected(self):
        eng = EventEngine()
        eng.schedule(5.0, lambda: eng.schedule(1.0, lambda: None))
        with pytest.raises(ValueError, match="causality"):
            eng.run()

    def test_negative_delay_rejected(self):
        eng = EventEngine()
        with pytest.raises(ValueError):
            eng.schedule_in(-1.0, lambda: None)

    def test_nan_rejected(self):
        eng = EventEngine()
        with pytest.raises(ValueError):
            eng.schedule(math.nan, lambda: None)

    def test_inf_rejected(self):
        eng = EventEngine()
        with pytest.raises(ValueError):
            eng.schedule(math.inf, lambda: None)


class TestHorizon:
    def test_until_stops_processing(self):
        eng = EventEngine()
        hits = []
        eng.schedule(1.0, lambda: hits.append(1))
        eng.schedule(10.0, lambda: hits.append(10))
        eng.run(until=5.0)
        assert hits == [1]
        assert eng.pending() == 1

    def test_max_events(self):
        eng = EventEngine()
        hits = []
        for i in range(10):
            eng.schedule(float(i), lambda i=i: hits.append(i))
        eng.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_events_processed_counter(self):
        eng = EventEngine()
        for i in range(4):
            eng.schedule(float(i), lambda: None)
        eng.run()
        assert eng.events_processed == 4

    def test_clock_advances_to_horizon_when_drained(self):
        eng = EventEngine()
        eng.schedule(1.0, lambda: None)
        eng.run(until=7.0)
        assert eng.now == 7.0

    def test_empty_queue_advances_to_finite_horizon(self):
        eng = EventEngine()
        eng.run(until=5.0)
        assert eng.now == 5.0

    def test_computed_infinity_never_advances_clock(self):
        """Regression: the infinite-horizon check must compare by
        value, not identity — a *computed* float('inf') is a different
        object from math.inf, and the old ``until is not math.inf``
        test advanced the clock to infinity on an empty queue."""
        eng = EventEngine()
        eng.schedule(1.0, lambda: None)
        eng.run(until=float("1e300") * float("1e300"))  # inf, fresh object
        assert eng.now == 1.0

        eng2 = EventEngine()
        eng2.run(until=float("inf"))  # empty queue, computed inf
        assert eng2.now == 0.0
