"""Failure injection: bounded NIC FIFOs, overflow, 802.1p level limits.

The analysis assumes lossless queues (a consequence of schedulability:
bounded backlog).  These tests exercise what the *simulator substrate*
does outside that assumption — drops are counted, dropped packets stay
incomplete, and the rest of the system keeps working.
"""

import pytest

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network, SwitchConfig
from repro.sim.simulator import SimConfig, Simulator, simulate
from repro.sim.stats import collect_stats
from repro.util.units import mbps, ms, us


def slow_switch_net():
    """A switch whose processor is far too slow for the offered load."""
    net = Network()
    net.add_endhost("h0")
    net.add_endhost("h1")
    net.add_switch("sw", SwitchConfig(c_route=us(500), c_send=us(500)))
    net.add_duplex_link("h0", "sw", speed_bps=mbps(100))
    net.add_duplex_link("sw", "h1", speed_bps=mbps(100))
    return net


def flood_flow(payload=10_000, period=ms(0.4)):
    return Flow(
        name="flood",
        spec=GmfSpec(
            min_separations=(period,),
            deadlines=(1.0,),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=("h0", "sw", "h1"),
        priority=3,
    )


class TestFifoOverflow:
    def test_drops_counted(self):
        net = slow_switch_net()
        sim = Simulator(
            net,
            [flood_flow()],
            SimConfig(duration=0.3, nic_fifo_capacity=4, drain_factor=0.0),
        )
        sim.run()
        stats = collect_stats(sim)
        assert stats.total_drops > 0

    def test_dropped_packets_incomplete(self):
        net = slow_switch_net()
        sim = Simulator(
            net,
            [flood_flow()],
            SimConfig(duration=0.3, nic_fifo_capacity=4, drain_factor=0.0),
        )
        trace = sim.run()
        assert trace.count_incomplete("flood") > 0

    def test_unbounded_fifos_never_drop(self):
        net = slow_switch_net()
        sim = Simulator(
            net, [flood_flow()], SimConfig(duration=0.3, drain_factor=0.0)
        )
        sim.run()
        assert collect_stats(sim).total_drops == 0

    def test_surviving_packets_still_measured(self):
        net = slow_switch_net()
        sim = Simulator(
            net,
            [flood_flow()],
            SimConfig(duration=0.3, nic_fifo_capacity=4, drain_factor=1.0),
        )
        trace = sim.run()
        assert trace.count_completed("flood") > 0
        assert trace.worst_response("flood") > 0

    def test_schedulable_load_fits_small_fifos(self, two_switch_net):
        """A load the analysis admits produces bounded backlog, so even
        modest FIFOs never overflow."""
        from repro.core.holistic import holistic_analysis

        flow = Flow(
            name="ok",
            spec=GmfSpec(
                min_separations=(ms(20),),
                deadlines=(ms(100),),
                jitters=(0.0,),
                payload_bits=(40_000,),
            ),
            route=("h0", "s0", "s1", "h2"),
            priority=3,
        )
        assert holistic_analysis(two_switch_net, [flow]).schedulable
        sim = Simulator(
            two_switch_net, [flow], SimConfig(duration=1.0, nic_fifo_capacity=64)
        )
        sim.run()
        assert collect_stats(sim).total_drops == 0


class TestPriorityLevels:
    def test_out_of_range_priority_raises(self, two_switch_net):
        flow = Flow(
            name="f",
            spec=GmfSpec(
                min_separations=(ms(20),),
                deadlines=(ms(100),),
                jitters=(0.0,),
                payload_bits=(10_000,),
            ),
            route=("h0", "s0", "s1", "h2"),
            priority=12,  # beyond 8 levels
        )
        with pytest.raises(ValueError, match="priority"):
            simulate(
                two_switch_net,
                [flow],
                config=SimConfig(duration=0.1, priority_levels=8),
            )

    def test_in_range_priority_works(self, two_switch_net):
        flow = Flow(
            name="f",
            spec=GmfSpec(
                min_separations=(ms(20),),
                deadlines=(ms(100),),
                jitters=(0.0,),
                payload_bits=(10_000,),
            ),
            route=("h0", "s0", "s1", "h2"),
            priority=7,
        )
        trace = simulate(
            two_switch_net,
            [flow],
            config=SimConfig(duration=0.2, priority_levels=8),
        )
        assert trace.count_completed() > 0
