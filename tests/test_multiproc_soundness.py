"""Multiprocessor switches: analysis vs simulation agreement.

The conclusions' extension (interfaces partitioned over m processors)
must stay sound: simulated responses on a multiprocessor switch never
exceed the analysis bound computed with the reduced CIRC.
"""

import pytest

from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network, SwitchConfig
from repro.sim.simulator import SimConfig, simulate
from repro.util.units import mbps, ms, us


def build_net(m: int, *, c_route=us(27), c_send=us(10)) -> Network:
    """4-interface switch with m processors and four hosts."""
    net = Network()
    net.add_switch(
        "sw", SwitchConfig(c_route=c_route, c_send=c_send, n_processors=m)
    )
    for h in ("h0", "h1", "h2", "h3"):
        net.add_endhost(h)
        net.add_duplex_link(h, "sw", speed_bps=mbps(100))
    return net


def flows():
    spec = GmfSpec(
        min_separations=(ms(5),) * 2,
        deadlines=(ms(100),) * 2,
        jitters=(0.0,) * 2,
        payload_bits=(60_000, 15_000),
    )
    return [
        Flow("a", spec, ("h0", "sw", "h2"), priority=5),
        Flow("b", spec, ("h1", "sw", "h3"), priority=3),
        Flow("c", spec, ("h0", "sw", "h3"), priority=1),
    ]


class TestMultiprocAnalysis:
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_circ_scales(self, m):
        net = build_net(m)
        assert net.circ("sw") == pytest.approx(4 // m * (27e-6 + 10e-6))

    def test_more_processors_tighter_bounds(self):
        r1 = holistic_analysis(build_net(1), flows())
        r4 = holistic_analysis(build_net(4), flows())
        for name in ("a", "b", "c"):
            assert r4.response(name) <= r1.response(name) + 1e-12
        # With the heavy task costs the difference must be visible.
        assert r4.response("a") < r1.response("a")


class TestMultiprocSoundness:
    @pytest.mark.parametrize("m", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["event", "rotation"])
    def test_bounds_dominate_simulation(self, m, mode):
        net = build_net(m)
        fs = flows()
        analysis = holistic_analysis(net, fs)
        assert analysis.converged
        trace = simulate(
            net, fs, config=SimConfig(duration=1.0, switch_mode=mode)
        )
        for f in fs:
            for k in range(f.spec.n_frames):
                observed = trace.worst_response(f.name, k)
                bound = analysis.result(f.name).frame(k).response
                assert observed <= bound + 1e-9, (
                    f"{f.name}[{k}] m={m} mode={mode}: {observed} > {bound}"
                )

    def test_parallel_processors_actually_parallel(self):
        """With 4 processors, disjoint flows complete sooner than with 1
        under rotation (smaller CIRC alignment)."""
        fs = flows()
        r1 = simulate(
            build_net(1), fs, config=SimConfig(duration=0.5, switch_mode="rotation")
        )
        r4 = simulate(
            build_net(4), fs, config=SimConfig(duration=0.5, switch_mode="rotation")
        )
        assert r4.worst_response("a") <= r1.worst_response("a") + 1e-12
