"""The sharded admission service: routing, parity, snapshots, serving."""

import asyncio
import json

import pytest

from repro.core.admission import AdmissionController
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network
from repro.scenario import Scenario
from repro.service import (
    PROTOCOL_VERSION,
    STATE_VERSION,
    AdmissionServer,
    ProtocolError,
    Request,
    ShardedAdmissionService,
    ShardRouter,
    load_service_state,
    load_trace,
    replay_over_tcp,
    replay_serial,
    replay_service,
    request_from_dict,
    request_to_dict,
    save_service_state,
    save_trace,
    service_state_from_dict,
    service_state_to_dict,
    trace_from_scenario,
)
from repro.util.units import mbps, ms
from repro.workloads.topologies import line_network, star_network
from repro.workloads.voip import voip_flow


def call_flow(name, route, payload=1_600_000 // 50, deadline=ms(20)):
    # ~1.6 Mbit/s per flow: a 10 Mbit/s star saturates after a handful.
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(deadline,),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=5,
    )


def saturating_scenario():
    """One star whose call pool rejects once enough are live."""
    net = star_network(4, speed_bps=mbps(10))
    flows = tuple(
        call_flow(f"c{i}", ("h0", "sw", "h1")) for i in range(6)
    )
    return Scenario(name="sat-star", network=net, flows=flows)


def two_star_network():
    """Two disjoint stars in one network: a natural 2-shard layout."""
    net = Network()
    for sw, hosts in (("sw0", "abcd"), ("sw1", "wxyz")):
        net.add_switch(sw)
        for h in hosts:
            net.add_endhost(f"{sw}_{h}")
            net.add_duplex_link(f"{sw}_{h}", sw, speed_bps=mbps(10))
    return net


def two_star_scenario():
    net = two_star_network()
    flows = []
    for i in range(8):
        sw = f"sw{i % 2}"
        a, b = ("a", "b") if sw == "sw0" else ("w", "x")
        flows.append(
            call_flow(f"{sw}_call{i}", (f"{sw}_{a}", sw, f"{sw}_{b}"))
        )
    return Scenario(name="two-star", network=net, flows=tuple(flows))


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_request_round_trip(self):
        flow = call_flow("c0", ("h0", "sw", "h1"))
        req = Request(op="admit", id=7, flow=flow, at=0.25)
        back = request_from_dict(request_to_dict(req))
        assert back.op == "admit" and back.id == 7 and back.at == 0.25
        assert back.flow == flow

    def test_newer_protocol_refused(self):
        doc = {"v": PROTOCOL_VERSION + 1, "op": "stats"}
        with pytest.raises(ProtocolError, match="newer"):
            request_from_dict(doc)

    def test_missing_version_refused(self):
        with pytest.raises(ProtocolError, match="protocol version"):
            request_from_dict({"op": "stats"})

    def test_unknown_op_refused(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            request_from_dict({"v": 1, "op": "frobnicate"})

    def test_admit_needs_flow(self):
        with pytest.raises(ProtocolError, match="missing 'flow'"):
            request_from_dict({"v": 1, "op": "admit"})

    def test_release_needs_flow_name(self):
        with pytest.raises(ProtocolError, match="missing 'flow_name'"):
            Request(op="release")


# ----------------------------------------------------------------------
# Shard router
# ----------------------------------------------------------------------
class TestShardRouter:
    def test_deterministic_across_instances(self):
        net = two_star_network()
        a = ShardRouter(net, 4)
        b = ShardRouter(net, 4)
        assert a.assignment() == b.assignment()
        for link in net.links():
            assert a.shard_of_link(link.src, link.dst) == b.shard_of_link(
                link.src, link.dst
            )

    def test_duplex_pairs_colocated(self):
        net = two_star_network()
        router = ShardRouter(net, 4)
        for link in net.links():
            assert router.shard_of_link(
                link.src, link.dst
            ) == router.shard_of_link(link.dst, link.src)

    def test_every_link_owned(self):
        net = line_network(3, hosts_per_switch=2, speed_bps=mbps(100))
        router = ShardRouter(net, 3)
        for link in net.links():
            assert 0 <= router.shard_of_link(link.src, link.dst) < 3

    def test_explicit_shard_map(self):
        net = two_star_network()
        router = ShardRouter(net, 2, shard_map={"sw0": 0, "sw1": 1})
        assert router.shard_of_switch("sw0") == 0
        assert router.shard_of_switch("sw1") == 1
        assert router.shards_for_route(("sw0_a", "sw0", "sw0_b")) == (0,)
        assert router.shards_for_route(("sw1_w", "sw1", "sw1_x")) == (1,)

    def test_shard_map_validation(self):
        net = two_star_network()
        with pytest.raises(ValueError, match="out of range"):
            ShardRouter(net, 2, shard_map={"sw0": 5})
        with pytest.raises(ValueError, match="unknown switches"):
            ShardRouter(net, 2, shard_map={"nope": 0})

    def test_switch_switch_link_owned_by_smaller_name(self):
        net = line_network(2, hosts_per_switch=1, speed_bps=mbps(100))
        router = ShardRouter(net, 2, shard_map={"sw0": 1, "sw1": 0})
        assert router.shard_of_link("sw0", "sw1") == 1
        assert router.shard_of_link("sw1", "sw0") == 1


# ----------------------------------------------------------------------
# Decision parity with the serial controller
# ----------------------------------------------------------------------
class TestParity:
    def test_single_shard_trace_matches_serial(self):
        sc = saturating_scenario()
        trace = trace_from_scenario(
            sc, n_requests=48, arrival="poisson", rate=200, hold=12, seed=5
        )
        serial = replay_serial(sc.network, trace, sc.options)
        assert serial.rejected > 0, "workload must exercise rejections"
        for batch in (1, 16):
            with ShardedAdmissionService(sc.network, n_shards=1) as svc:
                summary = replay_service(svc, trace, batch=batch)
            assert summary.admit_decisions == serial.admit_decisions

    def test_two_shard_local_workload_matches_serial(self):
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=40, arrival="burst", burst_size=8, hold=10, seed=2
        )
        serial = replay_serial(sc.network, trace, sc.options)
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1}
        ) as svc:
            summary = replay_service(svc, trace, batch=8)
            stats = svc.stats()
        assert summary.admit_decisions == serial.admit_decisions
        assert all(n > 0 for n in stats["shard_flows"]), (
            "both shards must end up owning flows"
        )
        assert stats["cross_shard_offered"] == 0

    def test_worker_backend_matches_inline(self):
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=24, arrival="poisson", rate=500, hold=8, seed=9
        )
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1}
        ) as inline:
            a = replay_service(inline, trace, batch=6)
        with ShardedAdmissionService(
            sc.network,
            n_shards=2,
            shard_map={"sw0": 0, "sw1": 1},
            workers=True,
        ) as procs:
            b = replay_service(procs, trace, batch=6)
        assert a.admit_decisions == b.admit_decisions

    def test_rejected_admit_can_be_reoffered_within_one_batch(self):
        # A name whose admit was rejected is free again; retrying it in
        # the same batch must yield a fresh decision, exactly as two
        # separate batches (and the serial controller) would.
        sc = saturating_scenario()
        hog = call_flow("hog", ("h0", "sw", "h1"), payload=2_500_000)
        retry = [
            Request(op="admit", flow=hog),
            Request(op="admit", flow=call_flow("pad", ("h2", "sw", "h3"))),
            Request(op="admit", flow=hog),
        ]
        with ShardedAdmissionService(sc.network) as one_batch:
            a = one_batch.process_batch(retry)
        with ShardedAdmissionService(sc.network) as per_request:
            b = [per_request.process_batch([r])[0] for r in retry]
        assert a == b
        assert a[0]["accepted"] is False and a[2]["accepted"] is False
        assert "error" not in a[2]

    def test_same_name_hops_shards_within_one_batch(self):
        # admit x on shard 1, release it, re-admit x on shard 0 — all in
        # one batch.  Bookkeeping must fold in submission order, not
        # shard order, leaving x owned by shard 0 only.
        sc = two_star_scenario()
        on_sw1 = call_flow("x", ("sw1_w", "sw1", "sw1_x"))
        on_sw0 = call_flow("x", ("sw0_a", "sw0", "sw0_b"))
        batch = [
            Request(op="admit", flow=on_sw1),
            Request(op="release", flow_name="x"),
            Request(op="admit", flow=on_sw0),
        ]
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1}
        ) as svc:
            payloads = svc.process_batch(batch)
            assert [p.get("accepted", p.get("released")) for p in payloads] == [
                True,
                True,
                True,
            ]
            assert svc.flow_assignment() == {"x": (0,)}
            q = svc.query("x")
            assert q["admitted"] and q["shards"] == [0]
            svc.release("x")
            assert svc.flow_assignment() == {}
            # shard 1 must not secretly retain the released flow
            assert svc.admit(on_sw1).accepted

    def test_dead_worker_degrades_without_desync(self):
        # Without supervision, killing one shard's worker mid-service
        # must error that shard's ops, keep the other shard (and its
        # reply pairing) intact, and keep bookkeeping consistent with
        # shard state.  (Supervised recovery is covered in
        # tests/test_service_faults.py.)
        sc = two_star_scenario()
        svc = ShardedAdmissionService(
            sc.network,
            n_shards=2,
            shard_map={"sw0": 0, "sw1": 1},
            workers=True,
            supervise=False,
        )
        try:
            svc._shards[1]._proc.terminate()
            svc._shards[1]._proc.join(timeout=5.0)
            batch = [
                Request(op="admit", flow=call_flow("a", ("sw0_a", "sw0", "sw0_b"))),
                Request(op="admit", flow=call_flow("b", ("sw1_w", "sw1", "sw1_x"))),
            ]
            payloads = svc.process_batch(batch)
            assert payloads[0]["accepted"] is True
            assert "error" in payloads[1]
            assert svc.flow_assignment() == {"a": (0,)}
            # The healthy shard still answers pairable requests.
            assert svc.query("a")["admitted"] is True
            assert svc.stats()["errors"] == 1
        finally:
            svc.close()

    def test_duplicate_and_unknown_errors_mirror_serial(self):
        sc = saturating_scenario()
        flow = sc.flows[0]
        with ShardedAdmissionService(sc.network) as svc:
            assert svc.admit(flow).accepted
            with pytest.raises(ValueError, match="already admitted"):
                svc.admit(flow)
            with pytest.raises(KeyError, match="not admitted"):
                svc.release("ghost")
            svc.release(flow.name)
            assert svc.query(flow.name) == {"admitted": False}


# ----------------------------------------------------------------------
# Cross-shard flows (two-phase accept)
# ----------------------------------------------------------------------
class TestCrossShard:
    @staticmethod
    def _line_service():
        net = line_network(2, hosts_per_switch=2, speed_bps=mbps(10))
        svc = ShardedAdmissionService(
            net, n_shards=2, shard_map={"sw0": 0, "sw1": 1}
        )
        return net, svc

    def test_accept_registers_on_every_shard(self):
        net, svc = self._line_service()
        with svc:
            crossing = call_flow("x0", ("h0_0", "sw0", "sw1", "h1_0"))
            decision = svc.admit(crossing)
            assert decision.accepted and decision.cross_shard
            assert decision.shards == (0, 1)
            q = svc.query("x0")
            assert q["admitted"] and q["shards"] == [0, 1]
            svc.release("x0")
            assert svc.query("x0") == {"admitted": False}

    def test_reject_rolls_back_tentative_accepts(self):
        net, svc = self._line_service()
        with svc:
            # Load the sw1 -> h1_0 link (shard 1); a 14 ms crossing
            # deadline is feasible in isolation (shard 0's view) but
            # not against this interference (shard 1's view).
            for i in range(2):
                assert svc.admit(
                    call_flow(f"s1_{i}", ("h1_1", "sw1", "h1_0"))
                ).accepted
            crossing = call_flow(
                "x0", ("h0_0", "sw0", "sw1", "h1_0"), deadline=ms(14)
            )
            decision = svc.admit(crossing)
            assert not decision.accepted and decision.cross_shard
            assert decision.reason.startswith("shard 1:")
            # Rollback must leave shard 0 clean: the name is reusable.
            local = call_flow("x0", ("h0_0", "sw0", "h0_1"))
            assert svc.admit(local).accepted
            assert svc.query("x0")["shards"] == [0]


# ----------------------------------------------------------------------
# Snapshot / restore
# ----------------------------------------------------------------------
class TestSnapshotRestore:
    def test_restored_service_is_byte_identical_on_replayed_log(self, tmp_path):
        sc = saturating_scenario()
        trace = trace_from_scenario(
            sc, n_requests=60, arrival="poisson", rate=150, hold=12, seed=11
        )
        warmup, remainder = trace.requests[:30], trace.requests[30:]
        with ShardedAdmissionService(sc.network, n_shards=1) as svc:
            svc.process_batch(list(warmup))
            path = tmp_path / "state.json"
            save_service_state(path, svc)
            with load_service_state(path) as restored:
                a = svc.process_batch(list(remainder))
                b = restored.process_batch(list(remainder))
        assert a == b

    def test_snapshot_document_shape(self):
        sc = two_star_scenario()
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map={"sw0": 0, "sw1": 1}
        ) as svc:
            for f in sc.flows[:4]:
                svc.admit(f)
            doc = service_state_to_dict(svc)
        assert doc["schema_version"] == STATE_VERSION
        assert doc["kind"] == "admission-service-state"
        assert doc["n_shards"] == 2
        assert len(doc["shards"]) == 2
        assert set(doc["flow_shards"]) == {f.name for f in sc.flows[:4]}
        json.dumps(doc)  # JSON-able throughout

    def test_snapshot_protocol_op(self, tmp_path):
        sc = saturating_scenario()
        with ShardedAdmissionService(sc.network) as svc:
            svc.admit(sc.flows[0])
            path = str(tmp_path / "op.json")
            payload = svc.process_batch(
                [Request(op="snapshot", path=path)]
            )[0]
            assert payload == {"path": path, "admitted": 1}
            inline = svc.process_batch([Request(op="snapshot")])[0]
        assert inline["state"]["flow_shards"] == {sc.flows[0].name: [0]}
        with load_service_state(path) as restored:
            assert restored.query(sc.flows[0].name)["admitted"]

    def test_newer_state_version_refused(self):
        sc = saturating_scenario()
        with ShardedAdmissionService(sc.network) as svc:
            doc = service_state_to_dict(svc)
        doc["schema_version"] = STATE_VERSION + 1
        with pytest.raises(Exception, match="newer"):
            service_state_from_dict(doc)

    def test_non_state_document_refused(self):
        sc = saturating_scenario()
        with ShardedAdmissionService(sc.network) as svc:
            doc = service_state_to_dict(svc)
        doc["kind"] = "something-else"
        with pytest.raises(Exception, match="not a service-state"):
            service_state_from_dict(doc)

    def test_controller_restore_matches_original(self):
        sc = saturating_scenario()
        ctrl = AdmissionController(sc.network)
        for f in sc.flows[:3]:
            ctrl.request(f)
        flows, jitters = ctrl.export_state()
        restored = AdmissionController.restore(
            sc.network, flows=flows, jitters=jitters
        )
        for f in sc.flows[3:]:
            assert ctrl.request(f).accepted == restored.request(f).accepted
        assert [f.name for f in ctrl.admitted_flows] == [
            f.name for f in restored.admitted_flows
        ]


# ----------------------------------------------------------------------
# Replay traces
# ----------------------------------------------------------------------
class TestReplayTraces:
    def test_traces_are_deterministic(self):
        sc = saturating_scenario()
        kw = dict(n_requests=30, arrival="poisson", rate=100, seed=4)
        assert (
            trace_from_scenario(sc, **kw).requests
            == trace_from_scenario(sc, **kw).requests
        )

    def test_trace_file_round_trip(self, tmp_path):
        sc = saturating_scenario()
        trace = trace_from_scenario(sc, n_requests=20, seed=1)
        path = tmp_path / "trace.jsonl"
        save_trace(path, trace)
        back = load_trace(path)
        assert back.requests == trace.requests
        # every line of the log is a valid protocol request
        for line in path.read_text().splitlines():
            request_from_dict(json.loads(line))

    def test_burst_arrivals_share_timestamps(self):
        sc = saturating_scenario()
        trace = trace_from_scenario(
            sc, n_requests=12, arrival="burst", burst_size=4, burst_gap=0.1
        )
        stamps = [r.at for r in trace.requests]
        assert stamps[0] == stamps[3] and stamps[4] == stamps[7]
        assert stamps[4] == pytest.approx(0.1)

    def test_recorded_arrival_replays_churn(self):
        events = 0
        sc = saturating_scenario()
        trace = trace_from_scenario(sc, arrival="recorded", rate=100)
        assert [r.op for r in trace.requests] == ["admit"] * len(sc.flows)
        for req, flow in zip(trace.requests, sc.flows):
            assert req.flow == flow
            events += 1
        assert events == len(sc.flows)

    def test_releases_keep_live_set_bounded(self):
        sc = saturating_scenario()
        trace = trace_from_scenario(sc, n_requests=40, hold=5, seed=0)
        live = 0
        peak = 0
        for r in trace.requests:
            live += 1 if r.op == "admit" else -1
            peak = max(peak, live)
        assert peak <= 5


# ----------------------------------------------------------------------
# TCP server
# ----------------------------------------------------------------------
class TestServer:
    def test_tcp_replay_matches_serial(self):
        sc = saturating_scenario()
        trace = trace_from_scenario(
            sc, n_requests=36, arrival="poisson", rate=400, hold=12, seed=3
        )
        serial = replay_serial(sc.network, trace, sc.options)

        async def run():
            svc = ShardedAdmissionService(sc.network, n_shards=1)
            server = AdmissionServer(svc, port=0, batch_window_s=0.001)
            await server.start()
            try:
                return await replay_over_tcp(
                    "127.0.0.1", server.port, trace, window=12
                )
            finally:
                await server.stop()
                svc.close()

        summary = asyncio.run(run())
        assert summary.admit_decisions == serial.admit_decisions
        # An open-loop trace may release flows whose admit was rejected;
        # both controllers must refuse those identically.
        assert summary.errors == serial.errors

    def test_protocol_errors_answered_in_order(self):
        sc = saturating_scenario()

        async def run():
            svc = ShardedAdmissionService(sc.network)
            server = AdmissionServer(svc, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b'{"v": 1, "id": 1, "op": "bogus"}\n')
                writer.write(b"not json at all\n")
                writer.write(b'{"v": 1, "id": 3, "op": "stats"}\n')
                await writer.drain()
                lines = [await reader.readline() for _ in range(3)]
                writer.close()
                await writer.wait_closed()
                return [json.loads(l) for l in lines]
            finally:
                await server.stop()
                svc.close()

        first, second, third = asyncio.run(run())
        assert first["ok"] is False and "unknown op" in first["error"]
        assert second["ok"] is False
        assert third["ok"] is True and third["id"] == 3
        assert third["admitted"] == 0 and third["server_requests"] == 3

    def test_half_closing_client_still_gets_all_responses(self):
        # `cat trace.jsonl | nc host port` half-closes after writing;
        # every queued request must still be answered before the server
        # closes the connection.
        sc = saturating_scenario()
        trace = trace_from_scenario(sc, n_requests=6, hold=6, seed=0)

        async def run():
            svc = ShardedAdmissionService(sc.network)
            server = AdmissionServer(svc, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                from repro.service import encode_line, request_to_dict

                for req in trace.requests:
                    writer.write(encode_line(request_to_dict(req)))
                await writer.drain()
                writer.write_eof()
                docs = []
                while line := await reader.readline():
                    docs.append(json.loads(line))
                writer.close()
                await writer.wait_closed()
                return docs
            finally:
                await server.stop()
                svc.close()

        docs = asyncio.run(run())
        assert [d["id"] for d in docs] == [r.id for r in trace.requests]
        assert all(d["ok"] for d in docs)

    def test_unwritable_snapshot_path_is_a_contained_error(self, tmp_path):
        # An unwritable snapshot target (missing directory) must come
        # back as an error payload without disturbing the batch or the
        # connection.
        sc = saturating_scenario()

        async def run():
            svc = ShardedAdmissionService(sc.network)
            server = AdmissionServer(
                svc, port=0, snapshot_dir=str(tmp_path / "missing-subdir")
            )
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b'{"v":1,"id":1,"op":"snapshot","path":"x.json"}\n'
                    b'{"v":1,"id":2,"op":"stats"}\n'
                )
                await writer.drain()
                first = json.loads(await reader.readline())
                second = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return first, second
            finally:
                await server.stop()
                svc.close()

        first, second = asyncio.run(run())
        assert first["ok"] is False and "snapshot" in first["error"]
        assert second["ok"] is True and second["admitted"] == 0

    def test_failing_batch_does_not_kill_the_dispatcher(self):
        # Even if process_batch itself raises, the dispatcher must
        # answer the batch with errors and keep serving.
        sc = saturating_scenario()

        async def run():
            svc = ShardedAdmissionService(sc.network)
            real = svc.process_batch
            calls = {"n": 0}

            def flaky(requests):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("injected fault")
                return real(requests)

            svc.process_batch = flaky
            server = AdmissionServer(svc, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b'{"v":1,"id":1,"op":"stats"}\n')
                await writer.drain()
                first = json.loads(await reader.readline())
                writer.write(b'{"v":1,"id":2,"op":"stats"}\n')
                await writer.drain()
                second = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return first, second
            finally:
                await server.stop()
                svc.close()

        first, second = asyncio.run(run())
        assert first["ok"] is False and "internal error" in first["error"]
        assert second["ok"] is True and second["admitted"] == 0

    def test_overlong_line_answered_then_closed(self):
        sc = saturating_scenario()

        async def run():
            svc = ShardedAdmissionService(sc.network)
            server = AdmissionServer(svc, port=0, line_limit=4096)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port, limit=1 << 20
                )
                writer.write(b'{"v":1,"id":1,"op":"stats"}\n')
                writer.write(b'{"pad":"' + b"x" * 8192 + b'"}\n')
                await writer.drain()
                docs = []
                while line := await reader.readline():
                    docs.append(json.loads(line))
                writer.close()
                await writer.wait_closed()
                return docs
            finally:
                await server.stop()
                svc.close()

        docs = asyncio.run(run())
        assert docs[0]["ok"] is True and docs[0]["id"] == 1
        assert docs[1]["ok"] is False and "exceeds" in docs[1]["error"]

    def test_file_snapshots_gated_by_snapshot_dir(self, tmp_path):
        sc = saturating_scenario()

        async def exchange(server_kwargs, path_req):
            svc = ShardedAdmissionService(sc.network)
            server = AdmissionServer(svc, port=0, **server_kwargs)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    json.dumps(
                        {"v": 1, "id": 1, "op": "snapshot", "path": path_req}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                doc = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return doc
            finally:
                await server.stop()
                svc.close()

        # No snapshot_dir: file snapshots over the wire are refused.
        refused = asyncio.run(exchange({}, str(tmp_path / "steal.json")))
        assert refused["ok"] is False and "disabled" in refused["error"]
        assert not (tmp_path / "steal.json").exists()
        # With snapshot_dir: only the basename inside the dir is honoured.
        sandbox = tmp_path / "snaps"
        sandbox.mkdir()
        escaped = asyncio.run(
            exchange(
                {"snapshot_dir": str(sandbox)},
                str(tmp_path / "outside.json"),
            )
        )
        assert escaped["ok"] is True
        assert not (tmp_path / "outside.json").exists()
        assert (sandbox / "outside.json").exists()


# ----------------------------------------------------------------------
# Retained demand generations (release -> re-admit hot path)
# ----------------------------------------------------------------------
class TestRetainedDemands:
    def test_release_then_readmit_reuses_demand_profiles(self):
        sc = saturating_scenario()
        ctrl = AdmissionController(sc.network)
        flow = sc.flows[0]
        assert ctrl.request(flow).accepted
        entries = ctrl._ctx._demand_cache[flow.name]
        ctrl.release(flow.name)
        assert flow.name in ctrl._retired
        assert ctrl.request(flow).accepted
        assert ctrl._ctx._demand_cache[flow.name] is entries

    def test_retired_store_is_bounded(self):
        sc = saturating_scenario()
        ctrl = AdmissionController(sc.network, retained_flows=2)
        for i in range(4):
            f = call_flow(f"r{i}", ("h0", "sw", "h1"))
            assert ctrl.request(f).accepted
            ctrl.release(f.name)
        assert len(ctrl._retired) == 2
        assert set(ctrl._retired) == {"r2", "r3"}

    def test_equal_flow_from_the_wire_reuses_profiles(self):
        # The service path never sees the same Flow *object* twice —
        # requests are re-parsed / unpickled — so revival must work on
        # value equality, not identity.
        from repro.io import flow_from_dict, flow_to_dict

        sc = saturating_scenario()
        ctrl = AdmissionController(sc.network)
        flow = sc.flows[0]
        assert ctrl.request(flow).accepted
        demands_before = {
            link: entry[1]
            for link, entry in ctrl._ctx._demand_cache[flow.name].items()
        }
        ctrl.release(flow.name)
        reparsed = flow_from_dict(flow_to_dict(flow))
        assert reparsed is not flow and reparsed == flow
        assert ctrl.request(reparsed).accepted
        demands_after = ctrl._ctx._demand_cache[flow.name]
        for link, demand in demands_before.items():
            assert demands_after[link][1] is demand

    def test_reused_name_never_serves_stale_profile(self):
        sc = saturating_scenario()
        ctrl = AdmissionController(sc.network)
        small = call_flow("dual", ("h0", "sw", "h1"), payload=8_000)
        assert ctrl.request(small).accepted
        ctrl.release("dual")
        # Same name, different flow object and payload: the revived
        # entries are identity-checked away, not served stale.
        big = call_flow("dual", ("h0", "sw", "h1"), payload=64_000)
        assert ctrl.request(big).accepted
        bound_big = ctrl.last_analysis.result("dual").worst_response
        fresh = AdmissionController(sc.network)
        assert fresh.request(big).accepted
        assert bound_big == fresh.last_analysis.result("dual").worst_response
