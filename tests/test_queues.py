"""Switch queues: NIC FIFOs and 802.1p priority queues."""

import pytest

from repro.switch.queues import FifoQueue, PriorityQueue, QueuedFrame


def frame(flow="f", prio=0, packet=0, frag=0, nfrags=1, bits=1000, t=0.0):
    return QueuedFrame(
        flow=flow,
        wire_bits=bits,
        priority=prio,
        packet_id=packet,
        fragment=frag,
        n_fragments=nfrags,
        enqueued_at=t,
    )


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue()
        q.push(frame(packet=1))
        q.push(frame(packet=2))
        assert q.pop().packet_id == 1
        assert q.pop().packet_id == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FifoQueue().pop()

    def test_peek(self):
        q = FifoQueue()
        assert q.peek() is None
        q.push(frame(packet=7))
        assert q.peek().packet_id == 7
        assert len(q) == 1  # peek does not remove

    def test_capacity_drops_at_tail(self):
        q = FifoQueue(capacity=2)
        assert q.push(frame(packet=1))
        assert q.push(frame(packet=2))
        assert not q.push(frame(packet=3))
        assert q.dropped == 1
        assert [f.packet_id for f in q] == [1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FifoQueue(capacity=0)

    def test_bool(self):
        q = FifoQueue()
        assert not q
        q.push(frame())
        assert q


class TestPriorityQueue:
    def test_highest_priority_first(self):
        q = PriorityQueue()
        q.push(frame(prio=1, packet=1))
        q.push(frame(prio=7, packet=2))
        q.push(frame(prio=3, packet=3))
        assert q.pop().packet_id == 2
        assert q.pop().packet_id == 3
        assert q.pop().packet_id == 1

    def test_fifo_within_level(self):
        q = PriorityQueue()
        for i in range(5):
            q.push(frame(prio=4, packet=i))
        assert [q.pop().packet_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_level_bound_enforced(self):
        """Commercial switches expose 2-8 levels (paper intro)."""
        q = PriorityQueue(n_levels=8)
        q.push(frame(prio=7))
        with pytest.raises(ValueError):
            q.push(frame(prio=8))
        with pytest.raises(ValueError):
            q.push(frame(prio=-1))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityQueue().pop()

    def test_peek(self):
        q = PriorityQueue()
        assert q.peek() is None
        q.push(frame(prio=2, packet=5))
        q.push(frame(prio=9, packet=6))
        assert q.peek().packet_id == 6
        assert len(q) == 2

    def test_backlog_bits(self):
        q = PriorityQueue()
        q.push(frame(bits=100))
        q.push(frame(bits=250))
        assert q.backlog_bits() == 350

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            PriorityQueue(n_levels=0)


class TestQueuedFrame:
    def test_with_enqueue_time_copies(self):
        f = frame(t=1.0)
        g = f.with_enqueue_time(2.5)
        assert g.enqueued_at == 2.5
        assert f.enqueued_at == 1.0
        assert g.flow == f.flow and g.wire_bits == f.wire_bits
