"""Scenario JSON serialization round-trips and validation."""

import json

import pytest

from repro.io import (
    ScenarioError,
    flow_from_dict,
    flow_to_dict,
    load_scenario,
    network_from_dict,
    network_to_dict,
    save_scenario,
    scenario_to_dict,
)
from repro.model.flow import Flow, Transport
from repro.model.gmf import GmfSpec
from repro.model.network import Network, NodeKind, SwitchConfig
from repro.util.units import mbps, ms, us


@pytest.fixture
def scenario(two_switch_net):
    flow = Flow(
        name="video",
        spec=GmfSpec(
            min_separations=(ms(30),) * 2,
            deadlines=(ms(100),) * 2,
            jitters=(ms(1), 0.0),
            payload_bits=(120_000, 40_000),
        ),
        route=("h0", "s0", "s1", "h2"),
        priority=5,
        link_priorities={("s0", "s1"): 7},
        transport=Transport.RTP,
    )
    return two_switch_net, [flow]


class TestRoundTrip:
    def test_network_round_trip(self, scenario):
        net, _ = scenario
        doc = network_to_dict(net)
        rebuilt = network_from_dict(doc)
        assert sorted(rebuilt.node_names()) == sorted(net.node_names())
        for link in net.links():
            assert rebuilt.linkspeed(link.src, link.dst) == link.speed_bps

    def test_switch_config_preserved(self):
        net = Network()
        net.add_switch(
            "sw", SwitchConfig(c_route=us(5.4), c_send=us(2.0), n_processors=2)
        )
        rebuilt = network_from_dict(network_to_dict(net))
        cfg = rebuilt.node("sw").switch
        assert cfg.c_route == pytest.approx(5.4e-6)
        assert cfg.c_send == pytest.approx(2.0e-6)
        assert cfg.n_processors == 2

    def test_flow_round_trip(self, scenario):
        _, flows = scenario
        rebuilt = flow_from_dict(flow_to_dict(flows[0]))
        assert rebuilt == flows[0]

    def test_file_round_trip(self, scenario, tmp_path):
        net, flows = scenario
        path = tmp_path / "scenario.json"
        save_scenario(path, net, flows)
        net2, flows2 = load_scenario(path)
        assert flows2 == flows
        assert sorted(net2.node_names()) == sorted(net.node_names())

    def test_analysis_identical_after_round_trip(self, scenario, tmp_path):
        from repro.core.holistic import holistic_analysis

        net, flows = scenario
        path = tmp_path / "scenario.json"
        save_scenario(path, net, flows)
        net2, flows2 = load_scenario(path)
        r1 = holistic_analysis(net, flows)
        r2 = holistic_analysis(net2, flows2)
        assert r1.response("video") == pytest.approx(r2.response("video"))


class TestValidation:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario(path)

    def test_missing_network(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"flows": []}))
        with pytest.raises(ScenarioError, match="network"):
            load_scenario(path)

    def test_unknown_node_kind(self):
        with pytest.raises(ScenarioError, match="unknown kind"):
            network_from_dict(
                {"nodes": [{"name": "x", "kind": "toaster"}], "links": []}
            )

    def test_missing_required_key(self):
        with pytest.raises(ScenarioError, match="missing required key"):
            flow_from_dict({"name": "f"})

    def test_route_validated_on_load(self, tmp_path, scenario):
        net, flows = scenario
        doc = scenario_to_dict(net, flows)
        doc["flows"][0]["route"] = ["h0", "h2"]  # no such link
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(Exception):
            load_scenario(path)

    def test_duplex_links(self):
        net = network_from_dict(
            {
                "nodes": [
                    {"name": "a", "kind": "endhost"},
                    {"name": "b", "kind": "endhost"},
                ],
                "links": [
                    {"src": "a", "dst": "b", "speed_bps": 1e6, "duplex": True}
                ],
            }
        )
        assert net.has_link("a", "b") and net.has_link("b", "a")

    def test_wrong_type_rejected(self):
        with pytest.raises(ScenarioError, match="expected"):
            network_from_dict(
                {"nodes": [{"name": 42, "kind": "endhost"}], "links": []}
            )
