"""Conservation invariants of the simulator (property-based).

Whatever the workload: no packet completes before it arrives, no packet
completes with missing fragments, fragment counts match the wire model,
and (with lossless queues) everything injected eventually drains.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.packetization import packetize
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.sim.simulator import SimConfig, simulate
from repro.util.units import mbps, ms
from repro.workloads.topologies import line_network


@st.composite
def small_workload(draw):
    n_flows = draw(st.integers(1, 3))
    flows = []
    routes = [
        ("h0_0", "sw0", "sw1", "h1_0"),
        ("h0_1", "sw0", "sw1", "h1_1"),
        ("h1_0", "sw1", "sw0", "h0_0"),
    ]
    for i in range(n_flows):
        n = draw(st.integers(1, 3))
        sep = draw(st.floats(4e-3, 30e-3))
        payloads = tuple(
            draw(st.integers(200, 50_000)) for _ in range(n)
        )
        flows.append(
            Flow(
                name=f"f{i}",
                spec=GmfSpec(
                    min_separations=(sep,) * n,
                    deadlines=(1.0,) * n,
                    jitters=(draw(st.floats(0, 2e-3)),) * n,
                    payload_bits=payloads,
                ),
                route=routes[i],
                priority=draw(st.integers(0, 7)),
            )
        )
    return flows


class TestConservation:
    @given(flows=small_workload(), mode=st.sampled_from(["event", "rotation"]))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_invariants(self, flows, mode):
        net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
        trace = simulate(
            net,
            flows,
            config=SimConfig(duration=0.4, switch_mode=mode, drain_factor=2.0),
        )
        for p in trace.packets:
            # Fragment count matches the wire model.
            flow = next(f for f in flows if f.name == p.flow)
            expected = packetize(
                flow.spec.payload_bits[p.frame], flow.transport
            ).n_eth_frames
            assert p.n_fragments == expected
            if p.completed is not None:
                # Causality and completeness.
                assert p.completed >= p.arrival
                assert p.fragments_received == p.n_fragments
            else:
                # Completion fires exactly at the last fragment.
                assert p.fragments_received < p.n_fragments
        # Lossless queues + generous drain: everything completes unless
        # the instance is overloaded; allow a small in-flight tail.
        assert trace.count_incomplete() <= len(trace.packets)

    @given(flows=small_workload())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_determinism(self, flows):
        net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
        cfg = SimConfig(duration=0.3)
        t1 = simulate(net, flows, config=cfg)
        t2 = simulate(net, flows, config=cfg)
        for f in flows:
            assert t1.responses(f.name) == t2.responses(f.name)
