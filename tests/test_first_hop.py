"""First-hop analysis (Sec. 3.2, Eqs. 14-20)."""

import math

import pytest

from repro.core.context import AnalysisContext, AnalysisOptions, link_resource
from repro.core.first_hop import first_hop_response_time, first_hop_utilization
from repro.core.results import StageKind
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec, sporadic_spec
from repro.model.network import Network
from repro.util.units import mbps, ms


def ctx_with(net, flows, **opts):
    return AnalysisContext(net, flows, AnalysisOptions(**opts) if opts else None)


def simple_flow(name="f", payload=10_000, period=ms(20), prio=3, route=("h0", "sw", "h2"), jitter=0.0):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(period,),
            deadlines=(ms(100),),
            jitters=(jitter,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=prio,
    )


class TestIsolatedFlow:
    def test_single_flow_response_is_c(self, one_switch_net):
        """With no competition, R = C (queue empty, q=0, w=0)."""
        flow = simple_flow()
        ctx = ctx_with(one_switch_net, [flow])
        res = first_hop_response_time(ctx, flow, 0)
        c = ctx.demand(flow, "h0", "sw").c[0]
        assert res.response == pytest.approx(c)
        assert res.converged
        assert res.kind is StageKind.FIRST_HOP

    def test_propagation_added(self):
        net = Network()
        net.add_endhost("h0")
        net.add_switch("sw")
        net.add_endhost("h2")
        net.add_duplex_link("h0", "sw", speed_bps=mbps(100), prop_delay=50e-6)
        net.add_duplex_link("sw", "h2", speed_bps=mbps(100))
        flow = simple_flow()
        ctx = ctx_with(net, [flow])
        res = first_hop_response_time(ctx, flow, 0)
        c = ctx.demand(flow, "h0", "sw").c[0]
        assert res.response == pytest.approx(c + 50e-6)

    def test_resource_key(self, one_switch_net):
        flow = simple_flow()
        ctx = ctx_with(one_switch_net, [flow])
        res = first_hop_response_time(ctx, flow, 0)
        assert res.resource == link_resource("h0", "sw")


class TestInterference:
    def test_sharing_source_link_increases_response(self, one_switch_net):
        a = simple_flow("a", prio=5)
        alone = first_hop_response_time(ctx_with(one_switch_net, [a]), a, 0)
        b = simple_flow("b", prio=1)  # lower priority still interferes
        shared = first_hop_response_time(ctx_with(one_switch_net, [a, b]), a, 0)
        assert shared.response > alone.response

    def test_priority_ignored_on_first_hop(self, one_switch_net):
        """Any work-conserving discipline: lower-priority flows interfere
        identically to higher-priority ones."""
        a = simple_flow("a", prio=5)
        lo = simple_flow("b", prio=0)
        hi = simple_flow("b", prio=9)
        r_lo = first_hop_response_time(ctx_with(one_switch_net, [a, lo]), a, 0)
        r_hi = first_hop_response_time(ctx_with(one_switch_net, [a, hi]), a, 0)
        assert r_lo.response == pytest.approx(r_hi.response)

    def test_flows_on_other_links_do_not_interfere(self, one_switch_net):
        a = simple_flow("a")
        other = simple_flow("b", route=("h1", "sw", "h2"))
        alone = first_hop_response_time(ctx_with(one_switch_net, [a]), a, 0)
        both = first_hop_response_time(ctx_with(one_switch_net, [a, other]), a, 0)
        assert both.response == pytest.approx(alone.response)

    def test_jitter_of_interferer_increases_response(self, one_switch_net):
        a = simple_flow("a", payload=40_000, period=ms(5))
        calm = simple_flow("b", payload=40_000, period=ms(5), jitter=0.0)
        jittery = simple_flow("b", payload=40_000, period=ms(5), jitter=ms(4.9))
        r_calm = first_hop_response_time(ctx_with(one_switch_net, [a, calm]), a, 0)
        r_jit = first_hop_response_time(
            ctx_with(one_switch_net, [a, jittery]), a, 0
        )
        assert r_jit.response >= r_calm.response

    def test_multi_frame_own_flow_busy_period(self, one_switch_net):
        """A GMF flow with a burst (zero separation) must check q > 0."""
        flow = Flow(
            name="burst",
            spec=GmfSpec(
                min_separations=(0.0, ms(20)),
                deadlines=(ms(100),) * 2,
                jitters=(0.0,) * 2,
                payload_bits=(11_000, 11_000),
            ),
            route=("h0", "sw", "h2"),
        )
        ctx = ctx_with(one_switch_net, [flow])
        res = first_hop_response_time(ctx, flow, 0)
        # Both frames can arrive together; the frame under analysis may
        # wait behind the cycle's other frame.
        assert res.converged


class TestUtilizationCondition:
    def test_utilization_sums_all_flows(self, one_switch_net):
        a = simple_flow("a")
        b = simple_flow("b")
        ctx = ctx_with(one_switch_net, [a, b])
        u = first_hop_utilization(ctx, "h0", "sw")
        da = ctx.demand(a, "h0", "sw")
        assert u == pytest.approx(2 * da.utilization)

    def test_overload_diverges(self, one_switch_net):
        """Eq. 20 violated -> diverged stage with infinite response."""
        hog = simple_flow("hog", payload=2_500_000, period=ms(20))
        a = simple_flow("a")
        ctx = ctx_with(one_switch_net, [a, hog])
        assert first_hop_utilization(ctx, "h0", "sw") >= 1.0
        res = first_hop_response_time(ctx, a, 0)
        assert not res.converged
        assert math.isinf(res.response)

    def test_near_saturation_converges(self, one_switch_net):
        """Just below Eq. 20's boundary the analysis still terminates."""
        heavy = simple_flow("heavy", payload=1_800_000, period=ms(20))
        ctx = ctx_with(one_switch_net, [heavy], horizon_factor=10_000.0)
        u = first_hop_utilization(ctx, "h0", "sw")
        assert 0.8 < u < 1.0
        res = first_hop_response_time(ctx, heavy, 0)
        assert res.converged


class TestBusyPeriod:
    def test_busy_period_at_least_c(self, one_switch_net):
        flow = simple_flow()
        ctx = ctx_with(one_switch_net, [flow])
        res = first_hop_response_time(ctx, flow, 0)
        assert res.busy_period >= ctx.demand(flow, "h0", "sw").c[0]

    def test_instances_checked(self, one_switch_net):
        flow = simple_flow()
        ctx = ctx_with(one_switch_net, [flow])
        res = first_hop_response_time(ctx, flow, 0)
        assert res.n_instances >= 1
