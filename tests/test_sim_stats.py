"""Simulation statistics collection."""

import pytest

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.sim.simulator import SimConfig, Simulator
from repro.sim.stats import collect_stats
from repro.util.units import mbps, ms


def run_sim(net, flows, duration=0.5, **cfg):
    sim = Simulator(net, flows, SimConfig(duration=duration, **cfg))
    sim.run()
    return sim


def make_flow(route, name="f", payload=40_000, period=ms(10)):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(period,),
            deadlines=(ms(100),),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=3,
    )


class TestLinkStats:
    def test_bits_counted_on_route_links(self, two_switch_net):
        sim = run_sim(two_switch_net, [make_flow(("h0", "s0", "s1", "h2"))])
        stats = collect_stats(sim)
        assert stats.link("h0", "s0").bits_sent > 0
        assert stats.link("s0", "s1").bits_sent > 0
        assert stats.link("s1", "h2").bits_sent > 0

    def test_unused_links_idle(self, two_switch_net):
        sim = run_sim(two_switch_net, [make_flow(("h0", "s0", "s1", "h2"))])
        stats = collect_stats(sim)
        assert stats.link("s1", "h3").bits_sent == 0

    def test_conservation_across_hops(self, two_switch_net):
        """Every wire bit entering a switch leaves it (no loss)."""
        sim = run_sim(two_switch_net, [make_flow(("h0", "s0", "s1", "h2"))])
        stats = collect_stats(sim)
        assert (
            stats.link("h0", "s0").frames_sent
            == stats.link("s0", "s1").frames_sent
            == stats.link("s1", "h2").frames_sent
        )

    def test_utilization_matches_analysis_long_run(self, two_switch_net):
        """Simulated wire utilisation approaches CSUM/TSUM."""
        from repro.core.context import AnalysisContext

        flow = make_flow(("h0", "s0", "s1", "h2"))
        sim = run_sim(two_switch_net, [flow], duration=3.0)
        stats = collect_stats(sim)
        ctx = AnalysisContext(two_switch_net, [flow])
        expected = ctx.demand(flow, "s0", "s1").utilization
        measured = stats.link("s0", "s1").utilization
        # The run includes the drain window, so measured is a bit lower.
        assert measured == pytest.approx(expected, rel=0.4)
        assert measured > 0

    def test_unknown_link_raises(self, two_switch_net):
        sim = run_sim(two_switch_net, [make_flow(("h0", "s0", "s1", "h2"))])
        with pytest.raises(KeyError):
            collect_stats(sim).link("h0", "h3")


class TestSwitchStats:
    def test_dispatch_and_busy_counters(self, two_switch_net):
        sim = run_sim(two_switch_net, [make_flow(("h0", "s0", "s1", "h2"))])
        stats = collect_stats(sim)
        s0 = stats.switch("s0")
        assert s0.dispatches > 0
        assert 0 < s0.busy_fraction < 1
        assert s0.frames_forwarded > 0

    def test_no_drops_unbounded_queues(self, two_switch_net):
        sim = run_sim(two_switch_net, [make_flow(("h0", "s0", "s1", "h2"))])
        assert collect_stats(sim).total_drops == 0

    def test_render(self, two_switch_net):
        sim = run_sim(two_switch_net, [make_flow(("h0", "s0", "s1", "h2"))])
        text = collect_stats(sim).render()
        assert "link statistics" in text
        assert "switch statistics" in text
