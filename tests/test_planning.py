"""Capacity planning: link-speed and payload scaling searches."""

import math

import pytest

from repro.core.planning import (
    max_admissible_scale,
    minimum_link_speed_scale,
    scale_link_speeds,
    scale_payloads,
    worst_slack_per_flow,
)
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.units import mbps, ms


def make_flow(route, name="f", payload=60_000, deadline=ms(50)):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(deadline,),
            jitters=(0.0,),
            payload_bits=(payload,),
        ),
        route=route,
        priority=3,
    )


class TestScaling:
    def test_scale_link_speeds(self, two_switch_net):
        scaled = scale_link_speeds(two_switch_net, 2.0)
        assert scaled.linkspeed("s0", "s1") == 2 * two_switch_net.linkspeed(
            "s0", "s1"
        )
        # Topology preserved.
        assert sorted(scaled.node_names()) == sorted(
            two_switch_net.node_names()
        )

    def test_scale_payloads(self, two_switch_net):
        flows = [make_flow(("h0", "s0", "s1", "h2"))]
        scaled = scale_payloads(flows, 0.5)
        assert scaled[0].spec.payload_bits[0] == 30_000

    def test_invalid_scale(self, two_switch_net):
        with pytest.raises(ValueError):
            scale_link_speeds(two_switch_net, 0.0)
        with pytest.raises(ValueError):
            scale_payloads([], -1.0)


class TestMinimumLinkSpeed:
    def test_already_schedulable_returns_at_most_one(self, two_switch_net):
        flows = [make_flow(("h0", "s0", "s1", "h2"))]
        scale = minimum_link_speed_scale(two_switch_net, flows)
        assert scale is not None
        assert scale <= 1.0

    def test_returned_scale_is_schedulable(self, two_switch_net):
        from repro.core.holistic import holistic_analysis

        flows = [make_flow(("h0", "s0", "s1", "h2"), deadline=ms(3))]
        scale = minimum_link_speed_scale(two_switch_net, flows)
        assert scale is not None
        assert holistic_analysis(
            scale_link_speeds(two_switch_net, scale), flows
        ).schedulable

    def test_overloaded_needs_more_than_one(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", payload=1_200_000),
            make_flow(("h1", "s0", "s1", "h3"), "b", payload=1_200_000),
        ]
        scale = minimum_link_speed_scale(two_switch_net, flows)
        assert scale is not None and scale > 1.0

    def test_impossible_deadline_returns_none(self, two_switch_net):
        """Deadline below the switch task costs: speed cannot help."""
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), deadline=1e-6)
        ]
        assert minimum_link_speed_scale(two_switch_net, flows) is None

    def test_empty_flow_set(self, two_switch_net):
        assert minimum_link_speed_scale(two_switch_net, []) == 1.0


class TestMaxAdmissibleScale:
    def test_headroom_exists(self, two_switch_net):
        flows = [make_flow(("h0", "s0", "s1", "h2"))]
        scale = max_admissible_scale(two_switch_net, flows)
        assert scale is not None and scale > 1.0

    def test_returned_scale_is_schedulable(self, two_switch_net):
        from repro.core.holistic import holistic_analysis

        flows = [make_flow(("h0", "s0", "s1", "h2"))]
        scale = max_admissible_scale(two_switch_net, flows)
        scaled = scale_payloads(flows, scale)
        assert holistic_analysis(two_switch_net, scaled).schedulable

    def test_tight_set_scale_below_one(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a", payload=1_500_000,
                      deadline=ms(100)),
            make_flow(("h1", "s0", "s1", "h3"), "b", payload=1_500_000,
                      deadline=ms(100)),
        ]
        scale = max_admissible_scale(two_switch_net, flows)
        assert scale is not None and scale < 1.0

    def test_structural_problem_returns_none(self, two_switch_net):
        flows = [make_flow(("h0", "s0", "s1", "h2"), deadline=1e-7)]
        assert max_admissible_scale(two_switch_net, flows) is None

    def test_empty_set_infinite(self, two_switch_net):
        assert max_admissible_scale(two_switch_net, []) == math.inf


class TestWorstSlack:
    def test_slacks_reported(self, two_switch_net):
        flows = [
            make_flow(("h0", "s0", "s1", "h2"), "a"),
            make_flow(("h1", "s0", "s1", "h3"), "b", deadline=ms(200)),
        ]
        slacks = worst_slack_per_flow(two_switch_net, flows)
        assert set(slacks) == {"a", "b"}
        assert slacks["b"] > slacks["a"]  # looser deadline, more slack
