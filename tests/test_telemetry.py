"""The telemetry layer: registry semantics, stores, reports, no-ops.

Three contracts matter most:

* **Zero overhead when disabled** — the module-level helpers must not
  allocate or mutate anything while ``REGISTRY`` is ``None`` (the
  default), because they sit on the admission/analysis hot paths.
* **Exact cross-process merging** — campaign and shard workers capture
  locally and ship snapshots; merged totals must equal a serial run.
* **Observation only** — enabling telemetry changes no analysis,
  admission or simulation result (spot-checked here; the full
  equivalence suites run with ``REPRO_TELEMETRY=1`` in CI).
"""

import gc
import json
import math
import sys

import pytest

from repro import telemetry
from repro.telemetry import Histogram, Registry, capture, merge_snapshots
from repro.telemetry.report import (
    aggregate,
    classify,
    derived_metrics,
    diff,
    render_diff,
    render_rollup,
)
from repro.telemetry.store import (
    RunRecord,
    StoreError,
    append_run,
    labels,
    load_runs,
    merge_run_telemetry,
)
from repro.util.mp import mp_context


@pytest.fixture(autouse=True)
def _telemetry_disabled_by_default():
    """Tests here manage activation explicitly; never leak a registry."""
    before = telemetry.REGISTRY
    yield
    telemetry.REGISTRY = before


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
class TestHistogram:
    def test_basic_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5

    def test_power_of_two_bucketing(self):
        h = Histogram()
        h.observe(3.0)  # 2 < 3 <= 4 -> bucket 2
        h.observe(4.0)  # exact power of two -> same bucket
        h.observe(5.0)  # 4 < 5 <= 8 -> bucket 3
        assert h.buckets == {2: 2, 3: 1}

    def test_zero_and_negative_underflow(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(-2.5)
        assert h.buckets == {Histogram.UNDERFLOW: 2}
        assert h.quantile(0.5) == 0.0

    def test_quantile_endpoints_exact(self):
        h = Histogram()
        for v in (0.5, 7.0, 100.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.5
        assert h.quantile(1.0) == 100.0
        # p50 lands in 7.0's bucket (4, 8]: geometric midpoint.
        assert h.quantile(0.5) == pytest.approx(math.sqrt(4 * 8))

    def test_empty_quantile_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_roundtrip_and_merge(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 10.0):
            a.observe(v)
        for v in (0.25, 100.0):
            b.observe(v)
        merged = Histogram.from_dict(a.to_dict())
        merged.merge_dict(b.to_dict())
        assert merged.count == 4
        assert merged.total == pytest.approx(111.25)
        assert merged.min == 0.25
        assert merged.max == 100.0
        # Bucket-wise sum of the two.
        expect = dict(a.buckets)
        for e, n in b.buckets.items():
            expect[e] = expect.get(e, 0) + n
        assert merged.buckets == expect

    def test_merge_empty_is_noop(self):
        h = Histogram()
        h.observe(1.0)
        h.merge_dict(Histogram().to_dict())
        assert h.count == 1


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counters_and_histograms(self):
        reg = Registry()
        reg.add("a.count")
        reg.add("a.count", 2.0)
        reg.observe("a.val", 3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.count": 3.0}
        assert snap["histograms"]["a.val"]["count"] == 1

    def test_snapshot_order_deterministic(self):
        """Same content, different insertion order -> identical JSON."""
        a, b = Registry(), Registry()
        for reg, names in (
            (a, ("z.last", "a.first", "m.mid")),
            (b, ("m.mid", "z.last", "a.first")),
        ):
            for name in names:
                reg.add(name)
                reg.observe(f"h.{name}", 1.0)
        assert json.dumps(a.snapshot(), sort_keys=False) == json.dumps(
            b.snapshot(), sort_keys=False
        )

    def test_merge_roundtrip_doubles(self):
        reg = Registry()
        reg.add("c", 5.0)
        reg.observe("h", 2.0)
        reg.merge(reg.snapshot())
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 10.0
        assert snap["histograms"]["h"]["count"] == 2

    def test_merge_refuses_newer_snapshot(self):
        with pytest.raises(ValueError, match="newer"):
            Registry().merge({"v": telemetry.SNAPSHOT_VERSION + 1})

    def test_merge_snapshots_order_independent(self):
        snaps = []
        for k in range(3):
            reg = Registry()
            reg.add("n", k + 1)
            reg.observe("v", float(k))
            snaps.append(reg.snapshot())
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(reversed(snaps))
        assert forward == backward
        assert forward["counters"]["n"] == 6.0

    def test_spans_nest_by_stack_path(self):
        reg = Registry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        snap = reg.snapshot()
        assert "span.outer" in snap["histograms"]
        assert "span.outer/inner" in snap["histograms"]
        assert snap["counters"]["span.outer/inner.calls"] == 1.0

    def test_timer_records_histogram(self):
        reg = Registry()
        with reg.timer("t_s"):
            pass
        assert reg.histograms["t_s"].count == 1


# ----------------------------------------------------------------------
# Activation and the disabled no-op path
# ----------------------------------------------------------------------
class TestActivation:
    def test_disabled_helpers_record_nothing(self):
        telemetry.REGISTRY = None
        telemetry.add("x")
        telemetry.observe("y", 1.0)
        with telemetry.span("z"):
            pass
        assert telemetry.REGISTRY is None
        assert not telemetry.enabled()

    def test_disabled_span_is_shared_singleton(self):
        telemetry.REGISTRY = None
        assert telemetry.span("a") is telemetry.span("b")

    def test_disabled_path_allocates_nothing(self):
        """The hot-path no-op must not build objects or grow dicts."""
        telemetry.REGISTRY = None
        for _ in range(16):  # warm up caches / small-int pools
            telemetry.add("x")
            telemetry.observe("y", 1.0)
            with telemetry.span("z"):
                pass
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            telemetry.add("x")
            telemetry.observe("y", 1.0)
            with telemetry.span("z"):
                pass
        gc.collect()
        # Zero new persistent blocks modulo interpreter noise.
        assert sys.getallocatedblocks() - before < 50

    def test_enable_disable_cycle(self):
        telemetry.REGISTRY = None
        reg = telemetry.enable()
        assert telemetry.enabled()
        assert telemetry.enable() is reg  # idempotent
        telemetry.add("hit")
        assert reg.counters["hit"] == 1.0
        assert telemetry.disable() is reg
        assert not telemetry.enabled()

    def test_capture_restores_previous(self):
        telemetry.REGISTRY = None
        outer = telemetry.enable()
        with capture() as inner:
            telemetry.add("inner.only")
            assert telemetry.REGISTRY is inner
        assert telemetry.REGISTRY is outer
        assert "inner.only" not in outer.counters
        assert inner.counters["inner.only"] == 1.0
        telemetry.disable()

    def test_capture_restores_previous_on_raise(self):
        """A raising capture body must not leak the inner registry."""
        telemetry.REGISTRY = None
        outer = telemetry.enable()
        with pytest.raises(RuntimeError, match="boom"):
            with capture() as inner:
                telemetry.add("inner.only")
                raise RuntimeError("boom")
        assert telemetry.REGISTRY is outer
        assert inner.counters["inner.only"] == 1.0
        telemetry.disable()

    def test_capture_restores_none_on_raise(self):
        """...including when the previous state was 'disabled'."""
        telemetry.REGISTRY = None
        with pytest.raises(ValueError):
            with capture():
                raise ValueError
        assert telemetry.REGISTRY is None

    def test_span_records_on_raise(self):
        """A raising span body still records duration, calls, errors."""
        reg = Registry()
        with pytest.raises(RuntimeError, match="boom"):
            with reg.span("work"):
                raise RuntimeError("boom")
        assert reg.counters["span.work.calls"] == 1.0
        assert reg.counters["span.work.errors"] == 1.0
        assert reg.histograms["span.work"].count == 1
        # The stack unwound: a later span is a fresh root, not nested.
        with reg.span("after"):
            pass
        assert reg.counters["span.after.calls"] == 1.0

    def test_span_exit_survives_unbalanced_stack(self):
        """__exit__ must not raise (or mis-pop) if the body disturbed
        the span stack — e.g. a nested span leaked by a harness, or the
        registry swept mid-span.  It falls back to the bare name."""
        reg = Registry()
        with reg.span("outer"):
            # Simulate a corrupted stack: the top is no longer "outer".
            reg._span_stack.append("stray")
        assert reg.counters["span.outer.calls"] == 1.0
        assert reg.histograms["span.outer"].count == 1
        reg2 = Registry()
        with reg2.span("work"):
            reg2._span_stack.clear()  # e.g. a concurrent reset
        assert reg2.counters["span.work.calls"] == 1.0


# ----------------------------------------------------------------------
# Cross-process merging through the shared mp policy
# ----------------------------------------------------------------------
def _worker_snapshot(k):
    with capture() as reg:
        reg.add("w.count", k)
        reg.observe("w.val", float(k))
    return reg.snapshot()


def test_merge_across_mp_workers():
    """Worker-captured snapshots fold into exact fleet totals."""
    with mp_context().Pool(2) as pool:
        snaps = pool.map(_worker_snapshot, [1, 2, 3, 4])
    merged = merge_snapshots(snaps)
    assert merged["counters"]["w.count"] == 10.0
    hist = merged["histograms"]["w.val"]
    assert hist["count"] == 4
    assert hist["sum"] == 10.0
    assert hist["min"] == 1.0
    assert hist["max"] == 4.0


# ----------------------------------------------------------------------
# Run store
# ----------------------------------------------------------------------
class TestStore:
    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        rec = RunRecord(
            label="a",
            kind="campaign",
            scenario="voip-star",
            metrics={"x": 1.0},
            telemetry=None,
            meta={"jobs": 2},
        )
        append_run(path, rec)
        (loaded,) = load_runs(path)
        assert loaded == rec

    def test_label_filter_and_order(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        for label in ("b", "a", "b"):
            append_run(path, RunRecord(label=label))
        assert labels(path) == ["b", "a"]
        assert len(load_runs(path, label="b")) == 2

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(StoreError, match="not found"):
            load_runs(tmp_path / "absent.jsonl")

    def test_newer_version_refused(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(json.dumps({"v": 99, "label": "x"}) + "\n")
        with pytest.raises(StoreError, match="newer"):
            load_runs(path)

    def test_merge_run_telemetry(self, tmp_path):
        reg = Registry()
        reg.add("c", 2.0)
        snap = reg.snapshot()
        records = [
            RunRecord(label="a", telemetry=snap),
            RunRecord(label="a", telemetry=snap),
            RunRecord(label="a", telemetry=None),
        ]
        merged = merge_run_telemetry(records)
        assert merged["counters"]["c"] == 4.0


# ----------------------------------------------------------------------
# Reports: classification, rollups, regression diffs
# ----------------------------------------------------------------------
class TestReport:
    def test_classify_gating_vs_timing(self):
        assert classify("engine.fixed_point.iterations") == ("lower", True)
        assert classify("admission.accept_rate") == ("higher", True)
        assert classify("engine.demand_cache.hit_rate") == ("higher", True)
        # Wall-clock numbers never gate.
        assert classify("admission.request_s.p99") == ("lower", False)
        assert classify("sim.events_per_s") == ("higher", False)
        assert classify("span.campaign.analyze.mean") == ("lower", False)

    def _snapshot(self, accepted):
        reg = Registry()
        reg.add("admission.requests", 10.0)
        reg.add("admission.accepted", accepted)
        reg.add("engine.demand_cache.hits", 9.0)
        reg.add("engine.demand_cache.misses", 1.0)
        reg.observe("admission.request_s", 0.001)
        return reg.snapshot()

    def test_derived_metrics(self):
        kpis = derived_metrics(self._snapshot(accepted=8.0))
        assert kpis["admission.accept_rate"] == pytest.approx(0.8)
        assert kpis["engine.demand_cache.hit_rate"] == pytest.approx(0.9)
        assert "admission.request_s.p99" in kpis
        assert derived_metrics(None) == {}

    def test_identical_runs_diff_clean(self):
        rec = RunRecord(label="a", telemetry=self._snapshot(8.0))
        base = aggregate("a", [rec])
        cand = aggregate("b", [RunRecord(label="b", telemetry=self._snapshot(8.0))])
        result = diff(base, cand)
        assert result.ok
        assert "no regressions flagged" in render_diff(result)

    def test_seeded_regression_flagged(self):
        base = aggregate("a", [RunRecord(label="a", telemetry=self._snapshot(8.0))])
        cand = aggregate("b", [RunRecord(label="b", telemetry=self._snapshot(4.0))])
        result = diff(base, cand)
        assert not result.ok
        flagged = {row.metric for row in result.regressions}
        assert "admission.accept_rate" in flagged
        assert "REGRESSION" in render_diff(result)

    def test_recorded_kpis_win_over_derived(self):
        rec = RunRecord(
            label="a",
            metrics={"admission.accept_rate": 0.5},
            telemetry=self._snapshot(8.0),
        )
        rollup = aggregate("a", [rec])
        assert rollup.metrics["admission.accept_rate"] == 0.5

    def test_rollup_renders(self):
        rollup = aggregate(
            "a", [RunRecord(label="a", telemetry=self._snapshot(8.0))]
        )
        text = render_rollup(rollup)
        assert "telemetry rollup" in text
        assert "admission.accept_rate" in text

    def test_rollup_surfaces_p99_beside_mean(self):
        """Every ``*_s`` histogram rolls up with tail latency visible:
        mean alone hides a bimodal hot path."""
        rollup = aggregate(
            "a", [RunRecord(label="a", telemetry=self._snapshot(8.0))]
        )
        assert "admission.request_s.mean" in rollup.metrics
        assert "admission.request_s.p99" in rollup.metrics
        text = render_rollup(rollup)
        assert "admission.request_s.mean" in text
        assert "admission.request_s.p99" in text

    def test_diff_surfaces_p99_beside_mean(self):
        base = aggregate(
            "a", [RunRecord(label="a", telemetry=self._snapshot(8.0))]
        )
        cand = aggregate(
            "b", [RunRecord(label="b", telemetry=self._snapshot(8.0))]
        )
        text = render_diff(diff(base, cand))
        assert "admission.request_s.mean" in text
        assert "admission.request_s.p99" in text

    def test_aggregate_empty_label_raises(self):
        with pytest.raises(ValueError, match="no runs"):
            aggregate("ghost", [])


# ----------------------------------------------------------------------
# Observation only: results identical with telemetry on
# ----------------------------------------------------------------------
class TestObservationOnly:
    def _workload(self):
        from repro.util.units import mbps
        from repro.workloads.generator import random_flow_set
        from repro.workloads.topologies import star_network

        net = star_network(6, speed_bps=mbps(100))
        flows = random_flow_set(
            net, n_flows=10, total_utilization=0.85, seed=3
        )
        return net, flows

    def test_analysis_bit_identical_with_telemetry(self):
        from repro.core.holistic import holistic_analysis

        net, flows = self._workload()
        plain = holistic_analysis(net, flows)
        with capture() as reg:
            instrumented = holistic_analysis(net, flows)
        assert plain.converged == instrumented.converged
        assert plain.iterations == instrumented.iterations
        for name in plain.flow_results:
            for fa, fb in zip(
                plain.result(name).frames,
                instrumented.result(name).frames,
            ):
                assert fa.response == fb.response
        # ... and the run actually recorded engine activity.
        snap = reg.snapshot()
        assert snap["counters"]["engine.holistic.analyses"] >= 1.0
        assert snap["counters"]["engine.fixed_point.solves"] > 0.0

    def test_simulation_identical_with_telemetry(self):
        from repro.sim.simulator import SimConfig, simulate

        net, flows = self._workload()
        config = SimConfig(duration=0.05)
        plain = simulate(net, flows, config=config)
        with capture() as reg:
            instrumented = simulate(net, flows, config=config)
        assert plain.events_processed == instrumented.events_processed
        for f in flows:
            assert plain.worst_response(f.name) == instrumented.worst_response(
                f.name
            )
        snap = reg.snapshot()
        assert snap["counters"]["sim.events"] == plain.events_processed
        assert snap["histograms"]["sim.heap_peak"]["count"] >= 1
