"""The generic fixed-point driver all analyses build on."""

import math

import pytest

from repro.util.fixed_point import (
    FixedPointDiverged,
    iterate_fixed_point,
)


class TestConvergence:
    def test_constant_function(self):
        res = iterate_fixed_point(lambda x: 5.0, seed=0.0)
        assert res.value == 5.0

    def test_seed_already_fixed(self):
        res = iterate_fixed_point(lambda x: x, seed=3.0)
        assert res.value == 3.0
        assert res.iterations == 1

    def test_classic_response_time_shape(self):
        """R = C + ceil(R/T) * C_hi: the textbook recurrence."""
        c, t_hi, c_hi = 2.0, 5.0, 1.0
        res = iterate_fixed_point(
            lambda r: c + math.ceil(r / t_hi) * c_hi, seed=c
        )
        # R = 2 + ceil(R/5): R=3 -> 2+1=3 fixed.
        assert res.value == 3.0

    def test_step_function_converges(self):
        res = iterate_fixed_point(
            lambda x: 1.0 + math.floor(x / 2.0), seed=0.0
        )
        assert res.value == 1.0

    def test_iterations_counted(self):
        calls = []
        def f(x):
            calls.append(x)
            return min(x + 1.0, 4.0)
        res = iterate_fixed_point(f, seed=0.0)
        assert res.value == 4.0
        assert res.iterations == len(calls)


class TestDivergence:
    def test_horizon_exceeded(self):
        with pytest.raises(FixedPointDiverged) as exc:
            iterate_fixed_point(lambda x: x + 1.0, seed=0.0, horizon=10.0)
        assert exc.value.last_value > 10.0

    def test_max_iterations_exceeded(self):
        with pytest.raises(FixedPointDiverged):
            iterate_fixed_point(
                lambda x: x + 1e-6, seed=0.0, max_iterations=50
            )

    def test_divergence_records_iterations(self):
        with pytest.raises(FixedPointDiverged) as exc:
            iterate_fixed_point(
                lambda x: x + 1.0, seed=0.0, max_iterations=7, horizon=1e9
            )
        assert exc.value.iterations == 7

    def test_what_appears_in_message(self):
        with pytest.raises(FixedPointDiverged, match="my recurrence"):
            iterate_fixed_point(
                lambda x: x + 1.0, seed=0.0, horizon=3.0, what="my recurrence"
            )


class TestMonotonicityGuard:
    def test_decreasing_update_raises(self):
        with pytest.raises(ValueError, match="monotone"):
            iterate_fixed_point(lambda x: x - 1.0, seed=10.0)

    def test_tiny_float_noise_tolerated(self):
        # A one-ulp decrease must not trip the guard.
        values = iter([1.0, 1.0 - 1e-16, 1.0 - 1e-16])
        res = iterate_fixed_point(lambda x: next(values), seed=0.0)
        assert res.value == pytest.approx(1.0)
