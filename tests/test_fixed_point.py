"""The generic fixed-point driver all analyses build on."""

import math

import pytest

from repro.util.fixed_point import (
    FixedPointDiverged,
    LinearLowerBound,
    iterate_fixed_point,
)


class TestConvergence:
    def test_constant_function(self):
        res = iterate_fixed_point(lambda x: 5.0, seed=0.0)
        assert res.value == 5.0

    def test_seed_already_fixed(self):
        """Documented contract: iterations == 0 when the seed is already
        a fixed point (the single confirming application is not
        counted)."""
        res = iterate_fixed_point(lambda x: x, seed=3.0)
        assert res.value == 3.0
        assert res.iterations == 0

    def test_classic_response_time_shape(self):
        """R = C + ceil(R/T) * C_hi: the textbook recurrence."""
        c, t_hi, c_hi = 2.0, 5.0, 1.0
        res = iterate_fixed_point(
            lambda r: c + math.ceil(r / t_hi) * c_hi, seed=c
        )
        # R = 2 + ceil(R/5): R=3 -> 2+1=3 fixed.
        assert res.value == 3.0

    def test_step_function_converges(self):
        res = iterate_fixed_point(
            lambda x: 1.0 + math.floor(x / 2.0), seed=0.0
        )
        assert res.value == 1.0

    def test_iterations_counted(self):
        """The last application only confirms the fixed point (it maps
        4.0 to itself), so it is not counted as an advance."""
        calls = []
        def f(x):
            calls.append(x)
            return min(x + 1.0, 4.0)
        res = iterate_fixed_point(f, seed=0.0)
        assert res.value == 4.0
        assert res.iterations == len(calls) - 1


class TestDivergence:
    def test_horizon_exceeded(self):
        with pytest.raises(FixedPointDiverged) as exc:
            iterate_fixed_point(lambda x: x + 1.0, seed=0.0, horizon=10.0)
        assert exc.value.last_value > 10.0

    def test_max_iterations_exceeded(self):
        with pytest.raises(FixedPointDiverged):
            iterate_fixed_point(
                lambda x: x + 1e-6, seed=0.0, max_iterations=50
            )

    def test_divergence_records_iterations(self):
        with pytest.raises(FixedPointDiverged) as exc:
            iterate_fixed_point(
                lambda x: x + 1.0, seed=0.0, max_iterations=7, horizon=1e9
            )
        assert exc.value.iterations == 7

    def test_what_appears_in_message(self):
        with pytest.raises(FixedPointDiverged, match="my recurrence"):
            iterate_fixed_point(
                lambda x: x + 1.0, seed=0.0, horizon=3.0, what="my recurrence"
            )


class TestMonotonicityGuard:
    def test_decreasing_update_raises(self):
        with pytest.raises(ValueError, match="monotone"):
            iterate_fixed_point(lambda x: x - 1.0, seed=10.0)

    def test_tiny_float_noise_tolerated(self):
        # A one-ulp decrease must not trip the guard.
        values = iter([1.0, 1.0 - 1e-16, 1.0 - 1e-16])
        res = iterate_fixed_point(lambda x: next(values), seed=0.0)
        assert res.value == pytest.approx(1.0)


def staircase(steps):
    """Monotone staircase: f(x) = value of the last step with edge <= x."""
    def f(x):
        total = 0.0
        for edge, value in steps:
            if x >= edge:
                total = value
        return total
    return f


class TestAcceleration:
    """The safeguarded certified-floor accelerated mode."""

    def slow_recurrence(self, rate=0.9, burst=1.0):
        # f(x) = burst + rate * ceil(x): a demand staircase that genuinely
        # satisfies f(t) >= rate*t + burst (ceil(t) >= t), so
        # LinearLowerBound(rate, burst) is a valid certificate.  Picard
        # needs ~lfp iterations; the certified floor jumps most of them.
        def f(x):
            return burst + rate * math.ceil(x)
        return f

    def test_accelerated_matches_picard_value(self):
        f = self.slow_recurrence()
        plain = iterate_fixed_point(f, seed=0.0)
        accel = iterate_fixed_point(
            f, seed=0.0, accelerator=LinearLowerBound(0.9, 1.0)
        )
        assert accel.value == plain.value

    def test_accelerated_uses_fewer_iterations(self):
        f = self.slow_recurrence(rate=0.99)
        plain = iterate_fixed_point(f, seed=0.0)
        accel = iterate_fixed_point(
            f, seed=0.0, accelerator=LinearLowerBound(0.99, 1.0)
        )
        assert accel.value == plain.value
        assert accel.iterations < plain.iterations / 5

    def test_floor_never_skips_least_fixed_point(self):
        """A staircase with several diagonal crossings: the floor jump
        must return the *least* fixed point, like Picard."""
        # Fixed points at 1 (f(1)=1) and at 10 (f(10)=10).
        f = staircase([(0.0, 1.0), (2.0, 10.0)])
        plain = iterate_fixed_point(f, seed=0.0)
        assert plain.value == 1.0
        # The tightest *valid* certificate for a bounded staircase is
        # rate 0 with the global minimum as intercept: the floor lands
        # just below the first fixed point and must not skip it.
        accel = iterate_fixed_point(
            f, seed=0.0, accelerator=LinearLowerBound(0.0, 1.0)
        )
        assert accel.value == 1.0

    def test_invalid_certificate_falls_back_to_picard(self):
        """An overshooting floor is detected and handled soundly.

        The certificate below is *invalid* for the capped staircase
        (its line crosses the cap), putting the floor at ~1.5 — past
        the least fixed point 1, inside a region where f(t) < t.  The
        strict no-decrease check at the floor must catch this and
        restart as plain Picard instead of silently converging to the
        higher fixed point 10 (or raising the monotonicity error)."""
        f = staircase([(0.0, 1.0), (2.0, 10.0)])
        accel = iterate_fixed_point(
            f, seed=0.0, accelerator=LinearLowerBound(0.5, 0.75)
        )
        assert accel.value == 1.0

    def test_certified_divergence(self):
        with pytest.raises(FixedPointDiverged, match="certified divergent"):
            iterate_fixed_point(
                lambda x: x + 1.0,
                seed=0.0,
                accelerator=LinearLowerBound(1.5, 1.0),
            )

    def test_floor_beyond_horizon_diverges_immediately(self):
        calls = []

        def f(x):
            calls.append(x)
            return x + 1.0

        with pytest.raises(FixedPointDiverged, match="floor"):
            iterate_fixed_point(
                f,
                seed=0.0,
                horizon=10.0,
                accelerator=LinearLowerBound(0.9, 100.0),
            )
        assert calls == []  # rejected before any evaluation

    def test_vacuous_certificate_is_plain_picard(self):
        f = self.slow_recurrence()
        plain = iterate_fixed_point(f, seed=0.0)
        accel = iterate_fixed_point(
            f, seed=0.0, accelerator=LinearLowerBound(0.0, 0.0)
        )
        assert accel.value == plain.value
        assert accel.iterations == plain.iterations


class TestAnderson:
    """The opt-in Anderson(1)/secant mode: exact on single-crossing
    recurrences, safeguard-defended (and at worst soundly pessimistic)
    on adversarial multi-crossing staircases."""

    def test_classic_response_time_exact(self):
        """Exactness check vs the plain iterate: textbook recurrence."""
        c, t_hi, c_hi = 2.0, 5.0, 1.0

        def f(r):
            return c + math.ceil(r / t_hi) * c_hi

        plain = iterate_fixed_point(f, seed=c)
        fast = iterate_fixed_point(f, seed=c, anderson=True)
        assert fast.value == plain.value == 3.0

    def test_linear_crawl_exact_and_fewer_iterations(self):
        """A near-affine staircase: the secant lands (almost) on the
        single crossing, replacing the plateau-by-plateau crawl."""
        rate, burst = 0.98, 1.0

        def f(x):
            return burst + rate * math.floor(x * 64.0) / 64.0

        plain = iterate_fixed_point(f, seed=0.0)
        fast = iterate_fixed_point(f, seed=0.0, anderson=True)
        assert fast.value == plain.value
        assert fast.iterations < plain.iterations / 5

    def test_composes_with_certified_floor(self):
        def f(x):
            return 1.0 + 0.9 * math.ceil(x)

        plain = iterate_fixed_point(f, seed=0.0)
        fast = iterate_fixed_point(
            f,
            seed=0.0,
            accelerator=LinearLowerBound(0.9, 1.0),
            anderson=True,
        )
        assert fast.value == plain.value

    def test_overshoot_onto_plateau_restarts_exactly(self):
        """A jump landing past a crossing hits a non-increasing
        evaluation; the safeguard restarts plain Picard and the result
        is exact."""
        # Crossing at 1 (f(1)=1); anything extrapolated past it lands
        # on the same plateau -> f(p) = 1 <= p -> caught.
        f = staircase([(0.0, 0.4), (0.35, 0.8), (0.75, 1.0)])
        plain = iterate_fixed_point(f, seed=0.0)
        fast = iterate_fixed_point(f, seed=0.0, anderson=True)
        assert fast.value == plain.value == 1.0

    def test_jump_cannot_prove_divergence(self):
        """A jump target whose evaluation exceeds the horizon restarts
        plain Picard instead of raising FixedPointDiverged."""
        # lfp = 1.0 (f(1) = 1), but f explodes past 2: a bad jump into
        # [2, inf) would see f > horizon.
        f = staircase([(0.0, 0.45), (0.4, 0.9), (0.85, 1.0), (2.0, 100.0)])
        plain = iterate_fixed_point(f, seed=0.0, horizon=10.0)
        fast = iterate_fixed_point(f, seed=0.0, horizon=10.0, anderson=True)
        assert fast.value == plain.value == 1.0

    def test_multi_crossing_result_is_sound_fixed_point(self):
        """On an adversarial staircase the mode may converge to a
        non-least fixed point — documented pessimism: the result is
        still a true fixed point and never below the plain iterate."""
        steps = [(0.0, 0.3)]
        steps += [(0.05 * i, 0.3 + 0.048 * i) for i in range(1, 15)]
        steps += [(5.0, 40.0)]
        f = staircase(steps)
        plain = iterate_fixed_point(f, seed=0.0)
        fast = iterate_fixed_point(f, seed=0.0, anderson=True)
        assert fast.value >= plain.value
        assert f(fast.value) == fast.value  # a genuine fixed point

    def test_divergent_recurrence_still_diverges(self):
        with pytest.raises(FixedPointDiverged):
            iterate_fixed_point(
                lambda x: x + 1.0, seed=0.0, horizon=50.0, anderson=True
            )
