"""Experiment harness: each E1-E9 runs and exhibits the expected shape."""

import math

import pytest

from repro.experiments.ablation import run_ablation
from repro.experiments.acceptance import run_acceptance_sweep
from repro.experiments.convergence import run_convergence_study
from repro.experiments.endtoend import run_endtoend_example
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.experiments.sensitivity import run_circ_sensitivity, run_hop_sweep
from repro.experiments.validation import run_validation
from repro.experiments.worked_example import run_circ_examples, run_worked_example


class TestE1WorkedExample:
    def test_tsum_matches_paper(self):
        res = run_worked_example()
        assert res.tsum == pytest.approx(0.270)

    def test_nine_frames(self):
        res = run_worked_example()
        assert res.demand.n_frames == 9

    def test_render_contains_cycle_sums(self):
        text = run_worked_example().render()
        assert "TSUM" in text and "270" in text


class TestE2Circ:
    def test_values(self):
        res = run_circ_examples()
        assert res.example_switch.circ == pytest.approx(14.8e-6)
        assert res.network_processor.circ == pytest.approx(11.1e-6)
        assert res.gigabit_feasible_speed > 1e9

    def test_render(self):
        assert "14.8" in run_circ_examples().render()


class TestE3EndToEnd:
    def test_schedulable(self):
        res = run_endtoend_example()
        assert res.analysis.schedulable

    def test_render_has_breakdown(self):
        text = run_endtoend_example().render()
        assert "first_hop" in text and "in(n4)" in text


class TestE4Validation:
    def test_soundness_holds(self):
        res = run_validation(seeds=(0, 1), duration=1.0)
        assert res.all_sound, res.violations
        assert res.rows

    def test_tightness_in_unit_interval(self):
        res = run_validation(seeds=(0,), duration=1.0, modes=("event",))
        assert 0 < res.mean_tightness <= 1.0


class TestE5Acceptance:
    def test_gmf_dominates_sporadic(self):
        res = run_acceptance_sweep(
            utilizations=(0.3, 0.6), trials=4
        )
        assert res.dominance_holds()

    def test_util_envelope(self):
        """No sound analysis admits what the necessary condition rejects."""
        res = run_acceptance_sweep(utilizations=(0.4, 0.8), trials=4)
        for p in res.points:
            assert p.accepted["gmf"] <= p.accepted["util"]


class TestE6CircSensitivity:
    def test_monotone_in_circ(self):
        res = run_circ_sensitivity(
            cost_scales=(0.5, 1.0, 4.0), processor_counts=(1, 2)
        )
        assert res.monotone_in_circ()

    def test_multiproc_reduces_circ(self):
        res = run_circ_sensitivity(
            cost_scales=(1.0,), processor_counts=(1, 2)
        )
        by_label = {r.label: r for r in res.rows}
        assert (
            by_label["2 processor(s)"].circ_us
            < by_label["1 processor(s)"].circ_us
        )


class TestE7Hops:
    def test_linear_growth(self):
        res = run_hop_sweep(switch_counts=(1, 2, 4))
        assert res.roughly_linear()
        bounds = [r.bound for r in res.rows]
        assert bounds == sorted(bounds)


class TestE8Ablation:
    def test_strict_below_corrected(self):
        res = run_ablation()
        for flow, corrected in res.variant("corrected").items():
            assert res.variant("strict_paper")[flow] <= corrected + 1e-12

    def test_no_jitter_below_corrected(self):
        res = run_ablation()
        for flow, corrected in res.variant("corrected").items():
            assert res.variant("no_jitter")[flow] <= corrected + 1e-12

    def test_jitter_matters_somewhere(self):
        res = run_ablation()
        deltas = [
            res.variant("corrected")[f] - res.variant("no_jitter")[f]
            for f in res.variant("corrected")
        ]
        assert max(deltas) > 0


class TestE9Convergence:
    def test_divergence_detected(self):
        res = run_convergence_study()
        assert res.divergence_detected_correctly()
        assert any(not p.utilization_ok for p in res.points)

    def test_bounds_monotone(self):
        res = run_convergence_study()
        assert res.bounds_monotone_in_load()


class TestRunner:
    def test_registry_complete(self):
        expected = {f"E{i}" for i in range(1, 10)} | {"E4b", "E5b"}
        assert set(EXPERIMENTS) == expected

    def test_run_subset(self):
        text = run_all(["E1", "E2"], quick=True)
        assert "==== E1 ====" in text and "==== E2 ====" in text

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            run_all(["E99"])


class TestE4bStageTightness:
    def test_sound_and_decreasing(self):
        from repro.experiments.validation import run_stage_tightness

        result = run_stage_tightness(duration=1.0)
        assert result.sound
        assert len(result.rows) == 3  # n4, n6, n3 of the Fig. 2 route
        ratios = [r.tightness for r in result.rows]
        assert ratios == sorted(ratios, reverse=True)


class TestE5bBurstiness:
    def test_gap_widens_and_baseline_exact_at_one(self):
        from repro.experiments.acceptance import run_burstiness_sweep

        res = run_burstiness_sweep(
            burstiness_levels=(1.0, 8.0), trials=5
        )
        assert res.gap_widens()
        first = res.points[0]
        assert first.ratio("gmf") == first.ratio("sporadic")
