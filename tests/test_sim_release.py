"""Release policies: arrival sequences and jitter windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.gmf import GmfSpec
from repro.sim.release import (
    BurstJitterPolicy,
    EagerRelease,
    PeriodicRelease,
    RandomRelease,
    SpreadJitterPolicy,
)


@pytest.fixture
def spec():
    return GmfSpec(
        min_separations=(0.01, 0.02, 0.03),
        deadlines=(0.1,) * 3,
        jitters=(0.0,) * 3,
        payload_bits=(100, 200, 300),
    )


class TestEagerRelease:
    def test_exact_minimum_separations(self, spec):
        arrivals = list(EagerRelease().arrivals(spec, until=0.065))
        assert arrivals == [
            (0.0, 0),
            (pytest.approx(0.01), 1),
            (pytest.approx(0.03), 2),
            (pytest.approx(0.06), 0),
        ]

    def test_phase_shifts_all(self, spec):
        arrivals = list(EagerRelease(phase=0.005).arrivals(spec, until=0.02))
        assert arrivals[0] == (0.005, 0)

    def test_start_frame_rotates(self, spec):
        arrivals = list(EagerRelease(start_frame=2).arrivals(spec, until=0.05))
        assert arrivals[0] == (0.0, 2)
        assert arrivals[1] == (pytest.approx(0.03), 0)

    def test_cycle_repeats(self, spec):
        arrivals = list(EagerRelease().arrivals(spec, until=0.4))
        ks = [k for _, k in arrivals]
        assert ks[:7] == [0, 1, 2, 0, 1, 2, 0]


class TestPeriodicRelease:
    def test_slack_stretches_separations(self, spec):
        arrivals = list(
            PeriodicRelease(slack_factor=2.0).arrivals(spec, until=0.05)
        )
        assert arrivals[1][0] == pytest.approx(0.02)

    def test_slack_below_one_rejected(self):
        with pytest.raises(ValueError):
            PeriodicRelease(slack_factor=0.5)

    def test_slack_one_equals_eager(self, spec):
        eager = list(EagerRelease().arrivals(spec, until=0.1))
        periodic = list(PeriodicRelease(slack_factor=1.0).arrivals(spec, until=0.1))
        assert eager == periodic


class TestRandomRelease:
    def test_reproducible(self, spec):
        a = list(RandomRelease(seed=42).arrivals(spec, until=0.3))
        b = list(RandomRelease(seed=42).arrivals(spec, until=0.3))
        assert a == b

    def test_different_seeds_differ(self, spec):
        a = list(RandomRelease(seed=1).arrivals(spec, until=0.3))
        b = list(RandomRelease(seed=2).arrivals(spec, until=0.3))
        assert a != b

    def test_never_violates_minimum_separation(self, spec):
        arrivals = list(RandomRelease(seed=7, spread=1.0).arrivals(spec, until=1.0))
        for (t1, k1), (t2, _) in zip(arrivals, arrivals[1:]):
            assert t2 - t1 >= spec.min_separations[k1] - 1e-12

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            RandomRelease(spread=-0.1)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_separation_invariant_any_seed(self, seed, ):
        spec = GmfSpec(
            min_separations=(0.01, 0.005),
            deadlines=(0.1,) * 2,
            jitters=(0.0,) * 2,
            payload_bits=(64, 64),
        )
        arrivals = list(RandomRelease(seed=seed).arrivals(spec, until=0.5))
        for (t1, k1), (t2, _) in zip(arrivals, arrivals[1:]):
            assert t2 - t1 >= spec.min_separations[k1] - 1e-12


class TestJitterPolicies:
    def test_burst_all_zero(self):
        assert list(BurstJitterPolicy().offsets(5, 0.01)) == [0.0] * 5

    def test_spread_first_at_zero(self):
        offs = SpreadJitterPolicy().offsets(4, 0.01)
        assert offs[0] == 0.0

    def test_spread_within_half_open_window(self):
        """Paper: fragments released during [t, t+GJ) — strictly less."""
        offs = SpreadJitterPolicy().offsets(4, 0.01)
        assert all(0.0 <= o < 0.01 for o in offs)

    def test_spread_monotone(self):
        offs = SpreadJitterPolicy().offsets(6, 0.01)
        assert offs == sorted(offs)

    def test_single_fragment_no_spread(self):
        assert SpreadJitterPolicy().offsets(1, 0.01) == [0.0]

    def test_zero_jitter_no_spread(self):
        assert SpreadJitterPolicy().offsets(3, 0.0) == [0.0] * 3
