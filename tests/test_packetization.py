"""Sec. 3.1 packetization: nbits, fragmentation, C, MFT."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packetization import (
    DEFAULT_CONFIG,
    ETH_DATA_BITS,
    ETH_MAX_WIRE_BITS,
    ETH_MIN_WIRE_BITS,
    ETH_WIRE_OVERHEAD_BITS,
    IP_HEADER_BITS,
    STRICT_CONFIG,
    PacketizationConfig,
    eth_frame_count,
    max_frame_transmission_time,
    max_payload_per_udp_packet,
    packetize,
    transmission_time,
    udp_packet_bits,
)
from repro.model.flow import Transport


class TestWireConstants:
    def test_paper_constants(self):
        """Sec. 3.1: 12304-bit max frame, 11840 data bits, 304 overhead."""
        assert ETH_MAX_WIRE_BITS == 12304
        assert ETH_DATA_BITS == 11840
        assert ETH_WIRE_OVERHEAD_BITS == 304
        assert IP_HEADER_BITS == 160


class TestUdpPacketBits:
    def test_byte_rounding_plus_udp_header(self):
        """nbits = ceil(S/8)*8 + 64 (Sec. 3.1 first formula)."""
        assert udp_packet_bits(100) == 104 + 64

    def test_exact_bytes(self):
        assert udp_packet_bits(800) == 800 + 64

    def test_rtp_adds_16_bytes(self):
        """Second formula: RTP adds 16*8 bits."""
        assert udp_packet_bits(800, Transport.RTP) == 800 + 64 + 128

    def test_zero_payload_rejected(self):
        with pytest.raises(ValueError):
            udp_packet_bits(0)


class TestFragmentation:
    def test_small_packet_single_fragment(self):
        p = packetize(1000)
        assert p.n_eth_frames == 1

    def test_exact_fill_boundary(self):
        """Payload exactly filling one Ethernet frame of data."""
        payload = ETH_DATA_BITS - 64  # room for the UDP header
        p = packetize(payload)
        assert p.n_eth_frames == 1
        assert p.fragment_wire_bits == (ETH_MAX_WIRE_BITS,)

    def test_one_bit_over_boundary_adds_fragment(self):
        payload = ETH_DATA_BITS - 64 + 8  # one byte too big
        p = packetize(payload)
        assert p.n_eth_frames == 2

    def test_full_fragments_are_max_size(self):
        p = packetize(50_000)
        assert all(b == ETH_MAX_WIRE_BITS for b in p.fragment_wire_bits[:-1])

    def test_remainder_has_ip_header_and_overhead(self):
        payload = ETH_DATA_BITS - 64 + 8 * 100  # remainder 800 bits
        p = packetize(payload)
        assert p.fragment_wire_bits[-1] == 800 + 160 + 304

    def test_minimum_frame_padding(self):
        """A tiny remainder is padded to the 64-byte Ethernet minimum."""
        payload = ETH_DATA_BITS - 64 + 8  # remainder 8 bits
        p = packetize(payload)
        assert p.fragment_wire_bits[-1] == ETH_MIN_WIRE_BITS

    def test_strict_paper_remainder(self):
        """strict_paper reproduces the printed `rem + 304` formula."""
        payload = ETH_DATA_BITS - 64 + 8
        p = packetize(payload, config=STRICT_CONFIG)
        assert p.fragment_wire_bits[-1] == 8 + 304

    def test_strict_never_larger_than_corrected(self):
        for payload in (100, 5_000, 11_776, 11_777, 40_000, 123_456):
            strict = packetize(payload, config=STRICT_CONFIG).wire_bits
            corrected = packetize(payload, config=DEFAULT_CONFIG).wire_bits
            assert strict <= corrected

    def test_eth_frame_count_matches_packetize(self):
        for payload in (64, 1000, 11_776, 11_777, 40_000, 200_000):
            assert eth_frame_count(payload) == packetize(payload).n_eth_frames


class TestTransmissionTime:
    def test_c_is_wire_bits_over_speed(self):
        p = packetize(40_000)
        assert p.transmission_time(1e7) == pytest.approx(p.wire_bits / 1e7)

    def test_paper_example_speed(self):
        """Sec. 3.1 uses linkspeed(0,4) = 10^7 bit/s."""
        c = transmission_time(16_000, 1e7)
        # 16000 payload + 64 UDP -> 2 fragments.
        p = packetize(16_000)
        assert p.n_eth_frames == 2
        assert c == pytest.approx(p.wire_bits / 1e7)

    def test_fragment_times_sum_to_c(self):
        p = packetize(120_000)
        assert sum(p.fragment_times(1e8)) == pytest.approx(
            p.transmission_time(1e8)
        )

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            packetize(1000).transmission_time(0)


class TestMft:
    def test_mft_formula(self):
        """Eq. 1: MFT = 12304 / linkspeed."""
        assert max_frame_transmission_time(1e7) == pytest.approx(1.2304e-3)

    def test_mft_gigabit(self):
        assert max_frame_transmission_time(1e9) == pytest.approx(12.304e-6)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            max_frame_transmission_time(-1)

    def test_no_fragment_exceeds_mft(self):
        for payload in (100, 11_000, 11_777, 99_999):
            p = packetize(payload)
            assert max(p.fragment_wire_bits) <= ETH_MAX_WIRE_BITS


class TestProperties:
    @given(payload=st.integers(1, 10**6))
    @settings(max_examples=200)
    def test_invariants(self, payload):
        p = packetize(payload)
        # Fragment count matches ceil of transport bits over frame data.
        assert p.n_eth_frames == math.ceil(p.udp_bits / ETH_DATA_BITS)
        # Wire bits at least the transport bits, at most frames * max.
        assert p.wire_bits >= p.udp_bits
        assert p.wire_bits <= p.n_eth_frames * ETH_MAX_WIRE_BITS
        # Every fragment within [min wire, max wire].
        for b in p.fragment_wire_bits:
            assert ETH_MIN_WIRE_BITS <= b <= ETH_MAX_WIRE_BITS

    @given(payload=st.integers(1, 10**6))
    @settings(max_examples=100)
    def test_monotone_in_payload(self, payload):
        a = packetize(payload).wire_bits
        b = packetize(payload + 8).wire_bits
        assert b >= a

    @given(payload=st.integers(1, 10**5))
    @settings(max_examples=100)
    def test_rtp_at_least_udp(self, payload):
        assert (
            packetize(payload, Transport.RTP).wire_bits
            >= packetize(payload, Transport.UDP).wire_bits
        )

    def test_max_payload_single_frame(self):
        payload = max_payload_per_udp_packet()
        assert packetize(payload).n_eth_frames == 1
        assert packetize(payload + 8).n_eth_frames == 2
