"""Replicated shards: journal-shipped standbys, failover, rebalancing.

The contract under test is the ISSUE-10 acceptance bar: with a warm
standby per shard fed by the primary's journal (ship-on-commit), killing
a primary at *any* op index yields decisions, query responses and an
exported state document byte-identical to a fault-free run — promotion
never loses a committed op and never invents one.  The same transfer
recipe must make ``rebalance`` equivalent to restoring a snapshot into
a service built with the new layout.
"""

import asyncio
import json
import time

import pytest

from repro.io import ScenarioError
from repro.service import (
    ERR_BAD_REQUEST,
    AdmissionServer,
    ConnectError,
    FaultPlan,
    FaultSpec,
    ProtocolError,
    Request,
    ShardedAdmissionService,
    ShardRouter,
    connect_with_backoff,
    reassign_shard_states,
    replay_service,
    request_from_dict,
    request_to_dict,
    service_state_from_dict,
    service_state_to_dict,
    trace_from_scenario,
)
from repro.service.faults import DURING_PROMOTION, FaultError
from test_service import call_flow, saturating_scenario, two_star_scenario


TWO_STAR_MAP = {"sw0": 0, "sw1": 1}


def _run_two_star(trace, *, plan=None, replicas=0, batch=8, **kwargs):
    """One replay under the standard two-star layout; returns the full
    comparison surface (decisions, queries, state doc, health)."""
    sc = two_star_scenario()
    with ShardedAdmissionService(
        sc.network, n_shards=2, shard_map=TWO_STAR_MAP, workers=True,
        replicas=replicas, fault_plan=plan, **kwargs,
    ) as svc:
        summary = replay_service(svc, trace, batch=batch)
        queries = [svc.query(name) for name in sorted(svc.admitted_names)]
        doc = service_state_to_dict(svc)
        health = svc.health()
    return summary, queries, doc, health


# ----------------------------------------------------------------------
# Fault plan: replication kinds
# ----------------------------------------------------------------------
class TestReplicationFaults:
    def test_parse_round_trip(self):
        spec = (
            "kill_standby:shard=0,at=3;drop_journal:shard=1,at=40;"
            "kill:shard=0,during=promotion,at=1;"
            "kill_standby:shard=0,at=2,incarnation=1;seed=5"
        )
        plan = FaultPlan.parse(spec)
        assert plan.seed == 5
        assert len(plan.faults) == 4
        assert plan == FaultPlan.from_dict(plan.to_dict())
        assert json.dumps(plan.to_dict())  # JSON-able
        kinds = sorted(f.kind for f in plan.faults)
        assert kinds == ["drop_journal", "kill", "kill_standby",
                         "kill_standby"]

    def test_selectors(self):
        plan = FaultPlan.parse(
            "kill_standby:shard=0,at=3;kill_standby:shard=0,at=9,"
            "incarnation=1;drop_journal:shard=1,at=40;"
            "drop_journal:shard=1,at=20;kill:shard=0,during=promotion,at=0;"
            "kill:shard=0,at=7"
        )
        assert {f.at for f in plan.standby_faults(shard=0)} == {3, 9}
        assert {f.at for f in plan.standby_faults(shard=0, generation=0)} \
            == {3}
        assert {f.at for f in plan.standby_faults(shard=0, generation=1)} \
            == {9}
        assert plan.standby_faults(shard=1) == ()
        assert plan.drop_journal_at(1) == 20, "earliest drop point wins"
        assert plan.drop_journal_at(0) is None
        promo = plan.promotion_faults(0)
        assert len(promo) == 1 and promo[0].during == DURING_PROMOTION
        # during=promotion kills are supervisor faults, never worker ops.
        assert {f.at for f in plan.worker_faults(shard=0)} == {7}
        assert len(plan.replication_faults()) == 5

    def test_validation(self):
        with pytest.raises(FaultError, match="needs shard"):
            FaultPlan.parse("kill_standby:at=1")
        with pytest.raises(FaultError, match="needs shard"):
            FaultPlan.parse("drop_journal:at=1")
        with pytest.raises(FaultError, match="during"):
            FaultPlan.parse("kill_standby:shard=0,during=promotion,at=0")
        with pytest.raises(FaultError, match="during"):
            FaultPlan.parse("kill:shard=0,during=restore,at=0")

    def test_replication_faults_require_replicas(self):
        sc = two_star_scenario()
        plan = FaultPlan.parse("kill_standby:shard=0,at=1")
        with pytest.raises(ValueError, match="replicas"):
            ShardedAdmissionService(sc.network, workers=True, fault_plan=plan)
        with pytest.raises(ValueError, match="workers=True"):
            ShardedAdmissionService(sc.network, replicas=1)


# ----------------------------------------------------------------------
# connect_with_backoff: deadline + attempt accounting
# ----------------------------------------------------------------------
class TestConnectError:
    def test_max_attempts_bounds_the_loop(self):
        async def run():
            with pytest.raises(ConnectError) as err:
                # Port 1: connects are refused instantly, so the loop
                # is bounded by attempts, not the (long) deadline.
                await connect_with_backoff(
                    "127.0.0.1", 1, timeout=30.0, max_attempts=3,
                )
            return err.value

        exc = asyncio.run(run())
        assert isinstance(exc, OSError), "legacy catch-sites keep working"
        assert exc.attempts == 3
        assert exc.elapsed_s > 0.0
        assert isinstance(exc.last_error, OSError)
        assert "3 attempt(s)" in str(exc)

    def test_deadline_reported_in_error(self):
        async def run():
            start = time.monotonic()
            with pytest.raises(ConnectError) as err:
                await connect_with_backoff("127.0.0.1", 1, timeout=0.25)
            return err.value, time.monotonic() - start

        exc, elapsed = asyncio.run(run())
        assert exc.attempts >= 1
        assert 0.2 <= exc.elapsed_s <= elapsed < 5.0


# ----------------------------------------------------------------------
# Warm failover: byte-identical decisions at every kill point
# ----------------------------------------------------------------------
class TestWarmFailover:
    def test_failover_byte_identical_with_counters(self):
        # The headline: both primaries killed mid-trace; promotions are
        # warm (failovers, no cold restores) and the entire observable
        # surface equals the fault-free run's.
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=40, arrival="burst", burst_size=8, hold=10,
            seed=2,
        )
        clean, clean_q, clean_doc, clean_h = _run_two_star(
            trace, replicas=1
        )
        plan = FaultPlan.parse("kill:shard=0,at=5;kill:shard=1,at=7")
        faulted, faulted_q, faulted_doc, faulted_h = _run_two_star(
            trace, plan=plan, replicas=1
        )

        assert clean_h["failovers"] == 0
        assert faulted_h["failovers"] == 2, "both kills must have fired"
        assert faulted_h["cold_restores"] == 0, "no cold path taken"
        assert faulted_h["restarts"] == 0
        assert faulted_h["failover_s_total"] > 0.0
        assert faulted_h["recovery_s_total"] == 0.0
        assert faulted_h["status"] == "ok"
        assert faulted.admit_decisions == clean.admit_decisions
        assert faulted.errors == clean.errors
        assert faulted_q == clean_q
        assert faulted_doc == clean_doc
        assert json.dumps(faulted_doc, sort_keys=True) == json.dumps(
            clean_doc, sort_keys=True
        )

    def test_kill_sweep_every_op_is_lossless(self):
        # The property test: killing the shard-0 primary at ANY op
        # index k gives byte-identical results.  Full sweep at seed 0;
        # spot checks at seeds 1-2 (and without a standby) below.
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=12, arrival="burst", burst_size=4, hold=6,
            seed=0,
        )
        clean = _run_two_star(trace, replicas=1)
        fired = 0
        for k in range(13):
            plan = FaultPlan.parse(f"kill:shard=0,at={k}")
            faulted = _run_two_star(trace, plan=plan, replicas=1)
            assert faulted[0].admit_decisions == clean[0].admit_decisions, \
                f"decisions diverged for kill at op {k}"
            assert faulted[1] == clean[1], f"queries diverged at op {k}"
            assert faulted[2] == clean[2], f"state doc diverged at op {k}"
            assert faulted[3]["cold_restores"] == 0
            fired += faulted[3]["failovers"]
        assert fired >= 3, "the sweep must actually exercise failovers"

    @pytest.mark.parametrize("seed", [1, 2])
    def test_kill_spot_checks_other_seeds(self, seed):
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=12, arrival="poisson", rate=500, hold=6,
            seed=seed,
        )
        clean = _run_two_star(trace, replicas=1)
        for k in (0, 3, 7):
            plan = FaultPlan.parse(f"kill:shard=0,at={k}")
            faulted = _run_two_star(trace, plan=plan, replicas=1)
            assert faulted[0].admit_decisions == clean[0].admit_decisions
            assert faulted[2] == clean[2]
            assert faulted[3]["cold_restores"] == 0

    def test_kill_spot_checks_without_standby(self):
        # The same kills without a live standby take PR 7's cold path —
        # still byte-identical, but as restarts, not failovers.
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=12, arrival="burst", burst_size=4, hold=6,
            seed=0,
        )
        clean = _run_two_star(trace, replicas=0)
        for k in (0, 3, 7):
            plan = FaultPlan.parse(f"kill:shard=0,at={k}")
            faulted = _run_two_star(trace, plan=plan, replicas=0)
            assert faulted[0].admit_decisions == clean[0].admit_decisions
            assert faulted[2] == clean[2]
            assert faulted[3]["failovers"] == 0

    def test_replica_health_and_stats_surface(self):
        sc = two_star_scenario()
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map=TWO_STAR_MAP, workers=True,
            replicas=1,
        ) as svc:
            assert svc.admit(
                call_flow("a", ("sw0_a", "sw0", "sw0_b"))
            ).accepted
            health = svc.health()
            stats = svc.stats()
        assert health["replicas"] == 1
        for shard_h in health["shards"]:
            assert shard_h["standby_alive"] is True
            assert shard_h["replication_lag_ops"] >= 0
            assert shard_h["cold_restores"] == shard_h["restarts"]
        assert stats["stats_version"] == 4
        for key in ("replicas", "failovers", "failover_s_total",
                    "cold_restores"):
            assert key in stats


# ----------------------------------------------------------------------
# Replication chaos: standby kills, severed journals, promotion kills
# ----------------------------------------------------------------------
class TestReplicationChaos:
    def _trace(self, sc):
        return trace_from_scenario(
            sc, n_requests=40, arrival="burst", burst_size=8, hold=10,
            seed=2,
        )

    def test_standby_killed_then_repaired_before_primary_dies(self):
        # The standby dies early; the primary notices on the next ship
        # and spawns a replacement, so the later primary kill still
        # promotes warm.
        sc = two_star_scenario()
        trace = self._trace(sc)
        clean = _run_two_star(trace, replicas=1)
        plan = FaultPlan.parse("kill_standby:shard=0,at=1;kill:shard=0,at=14")
        faulted = _run_two_star(trace, plan=plan, replicas=1)
        assert faulted[0].admit_decisions == clean[0].admit_decisions
        assert faulted[1] == clean[1]
        assert faulted[2] == clean[2]
        assert faulted[3]["failovers"] == 1
        assert faulted[3]["cold_restores"] == 0

    def test_severed_journal_promotes_with_gap_replay(self):
        # drop_journal leaves the standby's high-water mark behind the
        # commit point; promotion must replay exactly the gap.
        sc = two_star_scenario()
        trace = self._trace(sc)
        clean = _run_two_star(trace, replicas=1)
        plan = FaultPlan.parse("drop_journal:shard=0,at=6;kill:shard=0,at=14")
        faulted = _run_two_star(trace, plan=plan, replicas=1)
        assert faulted[0].admit_decisions == clean[0].admit_decisions
        assert faulted[2] == clean[2]
        assert faulted[3]["failovers"] == 1
        assert faulted[3]["cold_restores"] == 0

    def test_kill_during_promotion_falls_back_cold(self):
        # The standby dies at the start of the promotion attempt: the
        # supervisor must fall back to cold recovery — slower, never
        # wrong.
        sc = two_star_scenario()
        trace = self._trace(sc)
        clean = _run_two_star(trace, replicas=1)
        plan = FaultPlan.parse(
            "kill:shard=0,during=promotion,at=0;kill:shard=0,at=9"
        )
        faulted = _run_two_star(trace, plan=plan, replicas=1)
        assert faulted[0].admit_decisions == clean[0].admit_decisions
        assert faulted[2] == clean[2]
        assert faulted[3]["failovers"] == 0
        assert faulted[3]["cold_restores"] == 1

    def test_combined_chaos_keeps_parity(self):
        sc = two_star_scenario()
        trace = self._trace(sc)
        clean = _run_two_star(trace, replicas=1)
        plan = FaultPlan.parse(
            "kill_standby:shard=1,at=2;drop_journal:shard=0,at=8;"
            "kill:shard=0,at=15;kill:shard=1,at=12"
        )
        faulted = _run_two_star(trace, plan=plan, replicas=1)
        assert faulted[0].admit_decisions == clean[0].admit_decisions
        assert faulted[1] == clean[1]
        assert faulted[2] == clean[2]
        assert faulted[3]["failovers"] + faulted[3]["cold_restores"] >= 2

    def test_journal_compaction_under_replication(self):
        # Tight journal_limit forces compactions while shipping; the
        # standby must stay consistent across baseline rebuilds.
        sc = two_star_scenario()
        trace = self._trace(sc)
        clean = _run_two_star(trace, replicas=1)
        plan = FaultPlan.parse("kill:shard=0,at=21;kill:shard=1,at=17")
        faulted = _run_two_star(
            trace, plan=plan, replicas=1, journal_limit=4
        )
        assert faulted[0].admit_decisions == clean[0].admit_decisions
        assert faulted[2] == clean[2]
        assert faulted[3]["cold_restores"] == 0


# ----------------------------------------------------------------------
# Rebalancing
# ----------------------------------------------------------------------
class TestRebalance:
    def _replayed_service(self, sc, trace, **kwargs):
        svc = ShardedAdmissionService(
            sc.network, n_shards=2, shard_map=TWO_STAR_MAP, **kwargs
        )
        replay_service(svc, trace, batch=8)
        return svc

    def test_rebalance_equals_snapshot_restore(self):
        # The equivalence claim: live rebalance to a new map produces
        # exactly the state a snapshot restored into that map produces.
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=30, arrival="burst", burst_size=6, hold=8,
            seed=3,
        )
        swapped = {"sw0": 1, "sw1": 0}
        with self._replayed_service(sc, trace) as svc:
            before = service_state_to_dict(svc)
            result = svc.rebalance(swapped)
            live_doc = service_state_to_dict(svc)
            live_queries = [
                svc.query(name) for name in sorted(svc.admitted_names)
            ]
        assert result["rebalanced"] and result["n_shards"] == 2
        with service_state_from_dict(before, shard_map=swapped) as restored:
            restored_doc = service_state_to_dict(restored)
            restored_queries = [
                restored.query(name)
                for name in sorted(restored.admitted_names)
            ]
        assert live_doc == restored_doc
        assert live_queries == restored_queries
        assert live_doc["shard_map"] == swapped

    def test_rebalance_shrink_matches_native_layout(self):
        # Shrinking to one shard mid-life must equal having served the
        # whole trace on one shard from the start.
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=30, arrival="burst", burst_size=6, hold=8,
            seed=3,
        )
        with self._replayed_service(sc, trace) as svc:
            svc.rebalance(n_shards=1)
            shrunk_doc = service_state_to_dict(svc)
            assert svc.stats()["rebalances"] == 1
        with ShardedAdmissionService(sc.network, n_shards=1) as native:
            replay_service(native, trace, batch=8)
            native_doc = service_state_to_dict(native)
        assert shrunk_doc == native_doc

    def test_rebalance_with_worker_backends_and_replicas(self):
        sc = two_star_scenario()
        trace = trace_from_scenario(
            sc, n_requests=20, arrival="burst", burst_size=4, hold=6,
            seed=1,
        )
        with self._replayed_service(
            sc, trace, workers=True, replicas=1
        ) as svc:
            inline_doc = None
            with self._replayed_service(sc, trace) as ref:
                ref.rebalance({"sw0": 1, "sw1": 0})
                inline_doc = service_state_to_dict(ref)
            svc.rebalance({"sw0": 1, "sw1": 0})
            doc = service_state_to_dict(svc)
            health = svc.health()
        # Worker-backed rebalance agrees with the inline one on
        # everything but the backend flag.
        assert doc["shard_map"] == inline_doc["shard_map"]
        assert doc["shards"] == inline_doc["shards"]
        assert doc["flow_shards"] == inline_doc["flow_shards"]
        assert health["replicas"] == 1
        for shard_h in health["shards"]:
            assert shard_h["standby_alive"] is True

    def test_rebalance_refuses_cross_shard_admits(self):
        flow = call_flow("x", ("sw0_a", "sw0", "sw0_b"))
        sc = two_star_scenario()
        router = ShardRouter(sc.network, 2, shard_map=TWO_STAR_MAP)
        with pytest.raises(ValueError, match="cross-shard"):
            reassign_shard_states(
                [((flow,), {}), ((flow,), {})], {"x": (0, 1)}, router
            )
        with pytest.raises(ValueError, match="no shard state"):
            reassign_shard_states([((), {}), ((), {})], {"ghost": (0,)},
                                  router)

    def test_rebalance_validation(self):
        sc = two_star_scenario()
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map=TWO_STAR_MAP
        ) as svc:
            with pytest.raises(ValueError, match="shard_map or n_shards"):
                svc.rebalance()

    def test_rebalance_via_protocol_is_a_barrier_op(self):
        sc = two_star_scenario()
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map=TWO_STAR_MAP
        ) as svc:
            assert svc.admit(
                call_flow("a", ("sw0_a", "sw0", "sw0_b"))
            ).accepted
            payloads = svc.process_batch([
                Request(op="admit", id=0,
                        flow=call_flow("b", ("sw1_w", "sw1", "sw1_x"))),
                Request(op="rebalance", id=1, n_shards=1),
                Request(op="query", id=2, flow_name="a"),
            ])
            assert payloads[0]["accepted"]
            assert payloads[1]["rebalanced"] and payloads[1]["n_shards"] == 1
            assert payloads[2]["admitted"] is True
            assert svc.n_shards == 1
            # A bad target layout is a coded request error, not a crash.
            bad = svc.process_batch([
                Request(op="rebalance", id=3,
                        shard_map={"no-such-switch": 0}),
            ])[0]
            assert not bad.get("rebalanced", False)
            assert bad["code"] == ERR_BAD_REQUEST
            assert svc.n_shards == 1, "failed rebalance changes nothing"


# ----------------------------------------------------------------------
# Protocol v3
# ----------------------------------------------------------------------
class TestProtocolV3:
    def test_rebalance_round_trip(self):
        req = Request(op="rebalance", id=7, shard_map={"sw0": 1, "sw1": 0},
                      n_shards=2)
        back = request_from_dict(request_to_dict(req))
        assert back.op == "rebalance"
        assert back.shard_map == {"sw0": 1, "sw1": 0}
        assert back.n_shards == 2

    def test_rebalance_needs_a_target(self):
        with pytest.raises(ProtocolError, match="shard_map"):
            Request(op="rebalance")
        with pytest.raises(ProtocolError, match="n_shards"):
            Request(op="rebalance", n_shards=0)

    def test_malformed_shard_map_refused(self):
        with pytest.raises(ProtocolError, match="shard_map"):
            request_from_dict(
                {"v": 3, "id": 1, "op": "rebalance", "shard_map": "sw0=0"}
            )
        with pytest.raises(ProtocolError, match="shard_map"):
            request_from_dict(
                {"v": 3, "id": 1, "op": "rebalance",
                 "shard_map": {"sw0": "zero"}}
            )

    def test_older_requests_still_accepted(self):
        assert request_from_dict({"v": 1, "id": 1, "op": "stats"}).op \
            == "stats"
        assert request_from_dict({"v": 2, "id": 1, "op": "health"}).op \
            == "health"


# ----------------------------------------------------------------------
# State schema v2
# ----------------------------------------------------------------------
class TestStateV2:
    def _doc(self):
        sc = saturating_scenario()
        with ShardedAdmissionService(sc.network) as svc:
            svc.admit(sc.flows[0])
            return service_state_to_dict(svc)

    def test_v2_records_replicas(self):
        sc = two_star_scenario()
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map=TWO_STAR_MAP, workers=True,
            replicas=1,
        ) as svc:
            doc = service_state_to_dict(svc)
        assert doc["schema_version"] == 2
        assert doc["replicas"] == 1

    def test_restore_honours_snapshotted_replicas(self):
        sc = two_star_scenario()
        with ShardedAdmissionService(
            sc.network, n_shards=2, shard_map=TWO_STAR_MAP, workers=True,
            replicas=1,
        ) as donor:
            donor.admit(call_flow("keep", ("sw0_a", "sw0", "sw0_b")))
            doc = service_state_to_dict(donor)
        with service_state_from_dict(doc, workers=True) as svc:
            assert svc.replicas == 1
            assert svc.query("keep")["admitted"] is True
        # Inline restores cannot run standbys; the knob degrades to 0.
        with service_state_from_dict(doc, workers=False) as inline:
            assert inline.replicas == 0
            assert inline.query("keep")["admitted"] is True

    def test_v1_documents_stay_loadable(self):
        doc = self._doc()
        doc["schema_version"] = 1
        doc.pop("replicas")
        with service_state_from_dict(doc) as svc:
            assert svc.replicas == 0
            assert len(svc.admitted_names) == 1

    def test_newer_schema_refused(self):
        doc = self._doc()
        doc["schema_version"] = 3
        with pytest.raises(ScenarioError, match="newer"):
            service_state_from_dict(doc)


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_service_shutdown_writes_flight_records(self, tmp_path):
        sc = two_star_scenario()
        svc = ShardedAdmissionService(
            sc.network, n_shards=2, shard_map=TWO_STAR_MAP, workers=True,
            replicas=1, flight_dir=str(tmp_path),
        )
        assert svc.admit(call_flow("a", ("sw0_a", "sw0", "sw0_b"))).accepted
        svc.shutdown()
        reasons = sorted(
            json.loads(p.read_text())["reason"]
            for p in tmp_path.glob("*.json")
        )
        assert reasons.count("clean_shutdown") == 2, "one per primary"
        assert reasons.count("clean_shutdown_standby") == 2, \
            "one per live standby"

    def test_server_shutdown_drains_before_closing(self):
        sc = saturating_scenario()

        async def run():
            svc = ShardedAdmissionService(sc.network)
            real = svc.process_batch

            def slow(requests):
                time.sleep(0.2)  # keep a batch in flight at shutdown
                return real(requests)

            svc.process_batch = slow
            server = AdmissionServer(svc, port=0, batch_max=1)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                for i in range(3):
                    writer.write(
                        json.dumps({"v": 3, "id": i, "op": "stats"})
                        .encode() + b"\n"
                    )
                await writer.drain()
                # Let the connection handler queue all three requests;
                # the dispatcher is then mid-batch in the executor and
                # the drain marker trails the still-queued rest.
                await asyncio.sleep(0.1)
                await server.shutdown()
                docs = [
                    json.loads(await reader.readline()) for _ in range(3)
                ]
                assert await reader.readline() == b"", "EOF after drain"
                writer.close()
                # New connections are refused once shut down.
                with pytest.raises(OSError):
                    await asyncio.open_connection("127.0.0.1", server.port)
                return docs
            finally:
                svc.close()

        docs = asyncio.run(run())
        assert [d["id"] for d in docs] == [0, 1, 2]
        assert all(d["ok"] for d in docs)
