"""Hierarchical admission (core/hierarchy.py): exactness under churn.

The controller's claim is strong: every admit and release costs only
the candidate's interference closure, yet the controller's state —
decisions, per-flow bounds, the whole jitter table — is **byte
identical** to what a from-scratch analysis of the live flow set would
produce, after *every* step of *any* interleaving of admits and
releases.  These tests are the executable form of that claim (the
satellite property test of PR 8), plus the structural pieces: pod
classification, demand envelopes, preload-vs-sequential equivalence,
and the hierarchical == flat == reference decision agreement the CI
``scaling-smoke`` job re-asserts at 10^4 flows.
"""

import random

import pytest

from repro import telemetry
from repro.core.admission import (
    AdmissionController,
    make_admission_controller,
)
from repro.core.context import AnalysisContext, AnalysisOptions
from repro.core.hierarchy import HierarchicalAdmissionController, PodMap
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.scenario.families import datacenter_flows
from repro.util.units import mbps, ms
from repro.workloads.topologies import (
    multi_pod_fat_tree_network,
    multi_pod_route,
)


def _small_scenario(seed=0, *, speed=mbps(1000), n_mice=16):
    """A 2-pod fabric small enough to re-analyse from scratch per step."""
    return datacenter_flows(
        pods=2,
        aggs_per_pod=1,
        leaves_per_pod=2,
        hosts_per_leaf=2,
        cores=1,
        n_mice=n_mice,
        n_elephants=2,
        incast_groups=1,
        incast_fanin=3,
        tenants=2,
        seed=seed,
        speed_bps=speed,
    )


def _assert_results_equal(got, want):
    assert set(got) == set(want)
    for name in want:
        for fa, fb in zip(got[name].frames, want[name].frames):
            assert fa.response == fb.response, (
                f"{name} frame {fa.frame}: {fa.response!r} != {fb.response!r}"
            )


# ----------------------------------------------------------------------
# Pod classification and envelopes
# ----------------------------------------------------------------------
def test_pod_map_inference():
    net = multi_pod_fat_tree_network(
        pods=2, aggs_per_pod=1, leaves_per_pod=2, hosts_per_leaf=2, cores=1
    )
    pods = PodMap.from_network(net)
    assert pods.pod_of("p0_leaf1") == "p0"
    assert pods.pod_of("p1_h0_1") == "p1"
    assert pods.pod_of("core0") == "core"
    route = multi_pod_route("p0_h0_0", "p1_h1_1")
    assert pods.pods_of_route(route) == ("p0", "p1")
    assert pods.is_boundary_link("p0_agg0", "core0")
    assert not pods.is_boundary_link("p0_h0_0", "p0_leaf0")


def test_envelope_fast_reject_matches_reference():
    """A flow failing the necessary utilisation condition is rejected by
    both controllers without running the holistic analysis."""
    net, flows = _small_scenario()
    hier = HierarchicalAdmissionController(net, AnalysisOptions())
    ref = AdmissionController(net, AnalysisOptions())
    hog = Flow(
        name="hog",
        spec=GmfSpec(
            min_separations=(ms(1),),
            deadlines=(ms(50),),
            jitters=(0.0,),
            payload_bits=(2_000_000,),  # 2 Gbit/s offered on a 1 Gbit/s link
        ),
        route=multi_pod_route("p0_h0_0", "p0_h0_1"),
        priority=0,
    )
    dh, dr = hier.request(hog), ref.request(hog)
    assert not dh.accepted and not dr.accepted
    assert dh.analysis is None and dr.analysis is None
    assert "utilisation" in dh.reason
    # The rejected candidate left no trace: the next admit still works.
    probe = flows[0]
    assert hier.request(probe).accepted == ref.request(probe).accepted


# ----------------------------------------------------------------------
# The property test: arbitrary admit/release interleavings
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_interleaving_matches_from_scratch_after_every_step(seed):
    """Decisions match the reference controller and the jitter table and
    bounds match a from-scratch analysis after **every** step."""
    net, flows = _small_scenario(seed)
    options = AnalysisOptions()
    hier = HierarchicalAdmissionController(net, options)
    ref = AdmissionController(net, options)
    rng = random.Random(seed)
    pending = list(flows)
    live: list[str] = []
    by_name = {f.name: f for f in flows}
    steps = 0

    while pending or (live and steps < 60):
        steps += 1
        release = live and (not pending or rng.random() < 0.35)
        if release:
            name = live.pop(rng.randrange(len(live)))
            hier.release(name)
            ref.release(name)
        else:
            flow = pending.pop(rng.randrange(len(pending)))
            dh = hier.request(flow)
            dr = ref.request(flow)
            assert dh.accepted == dr.accepted, (
                f"{flow.name}: hier={dh.reason!r} ref={dr.reason!r}"
            )
            if dh.accepted:
                live.append(flow.name)

        admitted = [by_name[n] for n in (f.name for f in hier.admitted_flows)]
        assert [f.name for f in ref.admitted_flows] == [
            f.name for f in admitted
        ]
        # From-scratch reference: fresh context, same engine options.
        ctx = AnalysisContext(net, admitted, options)
        scratch = holistic_analysis(net, admitted, options, context=ctx)
        assert scratch.converged
        assert hier.jitter_snapshot() == ctx.jitters.snapshot()
        _assert_results_equal(dict(hier.flow_results), scratch.flow_results)


def test_preload_equals_sequential_admission():
    net, flows = _small_scenario(3)
    pre = HierarchicalAdmissionController(net, AnalysisOptions())
    pre.preload(flows)
    seq = HierarchicalAdmissionController(net, AnalysisOptions())
    for f in flows:
        assert seq.request(f).accepted, f.name
    assert [f.name for f in pre.admitted_flows] == [
        f.name for f in seq.admitted_flows
    ]
    assert pre.jitter_snapshot() == seq.jitter_snapshot()
    _assert_results_equal(dict(pre.flow_results), dict(seq.flow_results))


def test_hierarchical_flat_reference_decisions_agree():
    """The scaling-smoke assertion: hierarchical (flat arrays on),
    hierarchical (object-per-flow), and the reference controller make
    identical decisions with identical converged bounds."""
    net, flows = _small_scenario(4, speed=mbps(10), n_mice=24)
    controllers = [
        HierarchicalAdmissionController(net, AnalysisOptions()),
        HierarchicalAdmissionController(
            net, AnalysisOptions(flat_demand_arrays=False)
        ),
        AdmissionController(net, AnalysisOptions()),
    ]
    rejected = 0
    for f in flows:
        decisions = [c.request(f) for c in controllers]
        accepted = {d.accepted for d in decisions}
        assert len(accepted) == 1, f"{f.name}: {[d.reason for d in decisions]}"
        rejected += not decisions[0].accepted
    assert rejected  # the slow fabric must actually exercise rejection
    h_flat, h_obj, ref = controllers
    assert [f.name for f in h_flat.admitted_flows] == [
        f.name for f in h_obj.admitted_flows
    ] == [f.name for f in ref.admitted_flows]
    _assert_results_equal(dict(h_flat.flow_results), dict(h_obj.flow_results))
    scratch = holistic_analysis(
        net, ref.admitted_flows, AnalysisOptions()
    )
    _assert_results_equal(dict(h_flat.flow_results), scratch.flow_results)


# ----------------------------------------------------------------------
# API edges, factory, stats, telemetry
# ----------------------------------------------------------------------
def test_duplicate_admit_and_unknown_release_raise():
    net, flows = _small_scenario()
    hier = HierarchicalAdmissionController(net, AnalysisOptions())
    assert hier.request(flows[0]).accepted
    with pytest.raises(ValueError, match="already admitted"):
        hier.request(flows[0])
    with pytest.raises(KeyError, match="not admitted"):
        hier.release("nonesuch")


def test_factory_dispatch():
    net, _ = _small_scenario()
    assert isinstance(
        make_admission_controller(net), AdmissionController
    )
    assert isinstance(
        make_admission_controller(net, hierarchical=True),
        HierarchicalAdmissionController,
    )


def test_stats_and_telemetry_counters():
    net, flows = _small_scenario()
    with telemetry.capture() as reg:
        hier = HierarchicalAdmissionController(net, AnalysisOptions())
        for f in flows:
            hier.request(f)
        hier.release(flows[0].name)
    stats = hier.stats()
    assert stats["flows"] == len(hier.admitted_flows)
    assert set(stats["pods"]) <= {"p0", "p1", "core"}
    assert all(
        shard["resolves"] >= shard["admits"]
        for shard in stats["pods"].values()
    )
    counters = reg.snapshot()["counters"]
    assert counters["admission.requests"] == len(flows)
    assert counters["hierarchy.pod_resolves"] > 0
    assert counters["hierarchy.flow_resolves"] > 0
    assert counters["hierarchy.changed_set"] > 0
    assert counters["hierarchy.releases"] == 1
    assert counters.get("hierarchy.envelope_invalidations", 0) >= 0
    # The flat-array stores rebuilt at least once per touched link.
    assert counters["engine.flat_arrays.rebuilds"] > 0
