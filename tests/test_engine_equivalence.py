"""Engine equivalence: the fast paths must not move a single bit.

The performance work layers four optimisations over the seed engine —
the safeguarded accelerated fixed-point solver
(``AnalysisOptions.accelerate_fixed_points``), the dependency-aware
holistic worklist (``AnalysisOptions.incremental_holistic``), the
per-stage input memo (``AnalysisOptions.memoize_stages``), and the
admission hot path (shared demand cache + warm-started jitter table).
All four are *exactness-preserving* by construction: the safeguard
clamps every accelerated iterate to a certified lower bound of the
least fixed point, the worklist skips only flows that would reproduce
their cached result bit for bit, the memo replays a stage only when
its exact jitter inputs are unchanged, and warm starts seed the
monotone holistic iteration from a sound lower bound of the new fixed
point.

These tests are the executable form of that claim: across random flow
sets (seeded ``random_flow_set`` sweeps, the property-test recipe used
throughout this suite) on line / star / tree topologies, every engine
combination must return response-time bounds **bit-identical** (``==``
on floats, no tolerance) to the plain full-sweep Picard engine, and an
online admission controller must make the same accept/reject decisions
with the same final bounds as a cold-start seed-engine controller.
"""

from dataclasses import replace

import pytest

from repro.core.admission import AdmissionController
from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.util.units import mbps
from repro.workloads.generator import random_flow_set
from repro.workloads.topologies import (
    line_network,
    multi_pod_fat_tree_network,
    star_network,
    tree_network,
)

#: The seed implementation: plain Picard busy periods, full-sweep
#: holistic, every stage analysis recomputed every round, per-flow
#: demand objects (no flat arrays).
SEED_ENGINE = AnalysisOptions(
    accelerate_fixed_points=False,
    incremental_holistic=False,
    memoize_stages=False,
    flat_demand_arrays=False,
)

#: Each fast path alone on top of the seed, and the production default
#: (everything on).
FAST_ENGINES = {
    "accelerated": replace(SEED_ENGINE, accelerate_fixed_points=True),
    "worklist": replace(SEED_ENGINE, incremental_holistic=True),
    "memoized": replace(SEED_ENGINE, memoize_stages=True),
    "flat": replace(SEED_ENGINE, flat_demand_arrays=True),
    "all": AnalysisOptions(),
}


def _topology(name):
    if name == "line3":
        return line_network(3, hosts_per_switch=3, speed_bps=mbps(1000))
    if name == "star6":
        return star_network(6, speed_bps=mbps(100))
    if name == "tree2":
        return tree_network(
            2, fanout=2, hosts_per_leaf=2, speed_bps=mbps(1000)
        )
    if name == "multipod":
        return multi_pod_fat_tree_network(
            pods=2,
            aggs_per_pod=1,
            leaves_per_pod=2,
            hosts_per_leaf=2,
            cores=1,
            speed_bps=mbps(100),
        )
    raise ValueError(name)


def assert_bit_identical(a, b):
    """Two :class:`HolisticResult` objects agree bit for bit."""
    assert a.converged == b.converged
    assert a.iterations == b.iterations
    assert set(a.flow_results) == set(b.flow_results)
    for name in a.flow_results:
        fa = a.flow_results[name]
        fb = b.flow_results[name]
        assert len(fa.frames) == len(fb.frames)
        for frame_a, frame_b in zip(fa.frames, fb.frames):
            assert frame_a.response == frame_b.response, (
                f"{name} frame {frame_a.frame}: "
                f"{frame_a.response!r} != {frame_b.response!r}"
            )
            assert frame_a.deadline == frame_b.deadline
            assert len(frame_a.stages) == len(frame_b.stages)
            for sa, sb in zip(frame_a.stages, frame_b.stages):
                assert sa.resource == sb.resource
                assert sa.response == sb.response, (
                    f"{name} frame {frame_a.frame} stage {sa.resource}: "
                    f"{sa.response!r} != {sb.response!r}"
                )


@pytest.mark.parametrize("engine", sorted(FAST_ENGINES))
@pytest.mark.parametrize("topology", ["line3", "star6", "tree2", "multipod"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("utilization", [0.3, 0.85])
def test_fast_engine_matches_seed_engine(engine, topology, seed, utilization):
    """Property sweep: every fast engine == plain full-sweep Picard."""
    net = _topology(topology)
    flows = random_flow_set(
        net, n_flows=10, total_utilization=utilization, seed=seed
    )
    reference = holistic_analysis(net, flows, SEED_ENGINE)
    fast = holistic_analysis(net, flows, FAST_ENGINES[engine])
    assert_bit_identical(fast, reference)


@pytest.mark.parametrize("topology", ["line3", "tree2"])
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("utilization", [0.3, 0.85])
def test_anderson_engine_is_sound_never_optimistic(topology, seed, utilization):
    """The opt-in Anderson(1) solver mode is *sound but not exact*:
    every returned bound is a true fixed point of its recurrence, so at
    the engine level no response may ever drop below the seed engine's
    (that would be optimistic = unsafe); rare pessimistic excesses are
    the documented price of the uncertified jumps, which is why the
    mode is off by default and not part of :data:`FAST_ENGINES`."""
    net = _topology(topology)
    flows = random_flow_set(
        net, n_flows=10, total_utilization=utilization, seed=seed
    )
    reference = holistic_analysis(net, flows, SEED_ENGINE)
    anderson = holistic_analysis(
        net, flows, AnalysisOptions(anderson_fixed_points=True)
    )
    assert anderson.converged == reference.converged
    if not reference.converged:
        return
    for name, ref in reference.flow_results.items():
        got = anderson.flow_results[name]
        for frame_a, frame_b in zip(got.frames, ref.frames):
            assert frame_a.response >= frame_b.response, (
                f"{name} frame {frame_a.frame}: anderson bound "
                f"{frame_a.response!r} below seed {frame_b.response!r}"
            )


@pytest.mark.parametrize("utilization", [0.5, 1.6])
@pytest.mark.parametrize("seed", [11, 23])
def test_admission_decisions_match_seed_engine(seed, utilization):
    """The hot-path controller and a cold seed-engine controller agree.

    The fast controller uses the production defaults: accelerated
    solver, worklist engine, shared demand cache, warm-started jitter
    tables.  The reference rebuilds everything from scratch per request
    with the seed engine.  Decisions, final admitted sets and all
    *converged* response bounds must coincide.  Exemptions: round
    counts may differ (warm starts converge in fewer holistic rounds),
    and when a tentative analysis *diverges* the reported bounds are a
    partial trajectory (the engines stop mid-climb), which a warm start
    legitimately shifts — both controllers must still agree that the
    set diverged and reject.
    """
    net = line_network(3, hosts_per_switch=4, speed_bps=mbps(1000))
    flows = random_flow_set(
        net, n_flows=16, total_utilization=utilization, seed=seed
    )
    fast = AdmissionController(net, FAST_ENGINES["all"])
    cold = AdmissionController(net, SEED_ENGINE, warm_start=False)

    accepted = 0
    for flow in flows:
        df = fast.request(flow)
        dc = cold.request(flow)
        assert df.accepted == dc.accepted, (
            f"{flow.name}: fast={df.reason!r} cold={dc.reason!r}"
        )
        accepted += df.accepted
        assert (df.analysis is None) == (dc.analysis is None)
        if df.analysis is not None:
            assert df.analysis.converged == dc.analysis.converged
            if not df.analysis.converged:
                continue
            for name, result in df.analysis.flow_results.items():
                ref = dc.analysis.flow_results[name]
                for frame_a, frame_b in zip(result.frames, ref.frames):
                    assert frame_a.response == frame_b.response, (
                        f"{name} frame {frame_a.frame}: "
                        f"{frame_a.response!r} != {frame_b.response!r}"
                    )
    assert [f.name for f in fast.admitted_flows] == [
        f.name for f in cold.admitted_flows
    ]
    if utilization > 1.0:
        # The overload sweep must actually exercise the rejection paths.
        assert accepted < len(flows)


@pytest.mark.parametrize("seed", [5])
def test_release_then_readmit_matches_from_scratch(seed):
    """Churn equivalence: release + re-admit == analysing the final set.

    After admitting N flows, releasing one and re-admitting it, the
    controller's cached state (shared demand profiles, warm-started
    jitters) must yield exactly the bounds a from-scratch seed-engine
    analysis of the same final flow set produces.
    """
    net = line_network(3, hosts_per_switch=4, speed_bps=mbps(1000))
    flows = random_flow_set(
        net, n_flows=8, total_utilization=0.3, seed=seed
    )
    ctrl = AdmissionController(net)
    admitted = [flow for flow in flows if ctrl.request(flow).accepted]
    assert len(admitted) >= 3  # enough survivors to make churn meaningful
    churner = admitted[len(admitted) // 2]
    ctrl.release(churner.name)
    assert ctrl.request(churner).accepted

    names = [f.name for f in ctrl.admitted_flows]
    final_set = [next(f for f in flows if f.name == n) for n in names]
    reference = holistic_analysis(net, final_set, SEED_ENGINE)
    analysis = ctrl.last_analysis
    assert analysis.converged and reference.converged
    for name, result in reference.flow_results.items():
        got = analysis.flow_results[name]
        for frame_a, frame_b in zip(got.frames, result.frames):
            assert frame_a.response == frame_b.response
