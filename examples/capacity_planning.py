#!/usr/bin/env python
"""Capacity planning: how fast must the links be, how much can traffic grow?

The operator of the paper's Fig. 1 network wants to carry the
video-conference + VoIP + backup mix of the E3 scenario and asks:

1. what is the *cheapest* (slowest) uniform link speed that still meets
   every deadline?  (monotone bisection over the holistic analysis);
2. with the planned 100 Mbit/s links, how much can the traffic volume
   grow before deadlines break?
3. where is the bottleneck and how much slack does each flow have?

The script also round-trips the scenario through JSON and shows the CLI
one-liner that reproduces the answer.

Run:  python examples/capacity_planning.py
"""

import tempfile
from pathlib import Path

from repro import (
    holistic_analysis,
    load_scenario,
    max_admissible_scale,
    minimum_link_speed_scale,
    save_scenario,
    worst_slack_per_flow,
)
from repro.core.context import AnalysisContext
from repro.core.planning import scale_link_speeds
from repro.core.utilization import network_convergence_report
from repro.experiments.endtoend import build_example_scenario
from repro.util.tables import Table
from repro.util.units import fmt_rate, mbps

net, flows = build_example_scenario(speed_bps=mbps(100))

# --- 1. cheapest uniform link speed -----------------------------------
scale = minimum_link_speed_scale(net, flows, tolerance=0.005)
assert scale is not None
base_speed = net.linkspeed("n0", "n4")
print(
    f"minimum uniform link speed for schedulability: "
    f"{fmt_rate(base_speed * scale)} "
    f"(scale {scale:.4f} of the planned {fmt_rate(base_speed)})"
)
cheap_net = scale_link_speeds(net, scale)
assert holistic_analysis(cheap_net, flows).schedulable

# --- 2. traffic growth headroom at the planned speed ------------------
growth = max_admissible_scale(net, flows, tolerance=0.005)
print(
    f"traffic can grow by {growth:.2f}x at {fmt_rate(base_speed)} before "
    f"a deadline breaks"
)

# --- 3. bottleneck + per-flow slack ------------------------------------
report = network_convergence_report(AnalysisContext(net, flows))
bn = report.bottleneck()
print(
    f"bottleneck resource: {'/'.join(str(p) for p in bn.resource)} at "
    f"{bn.utilization:.4f} utilisation"
)

slack_table = Table(["flow", "worst slack (ms)"])
for name, slack in sorted(worst_slack_per_flow(net, flows).items()):
    slack_table.add_row([name, slack * 1e3])
print(slack_table.render())

# --- JSON round trip + CLI pointer -------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "fig1_scenario.json"
    save_scenario(path, net, flows)
    net2, flows2 = load_scenario(path)
    r1 = holistic_analysis(net, flows).response("mpeg")
    r2 = holistic_analysis(net2, flows2).response("mpeg")
    assert abs(r1 - r2) < 1e-12
    print(
        f"\nscenario written to JSON and re-analysed identically "
        f"(R_mpeg = {r1 * 1e3:.4f} ms)"
    )
    print(f"CLI equivalent:  python -m repro.cli plan {path.name}")
