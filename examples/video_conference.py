#!/usr/bin/env python
"""The paper's motivating scenario: video conferencing on the Fig. 1 network.

Two end hosts run a video-conferencing session across the example
network of the paper's Fig. 1 (hosts n0-n3, software switches n4-n6, IP
router n7).  Each direction of the call is two flows — MPEG video and
VoIP audio — exactly the process/flow structure Sec. 2.1 describes.  A
lower-priority bulk backup flow shares the backbone to create realistic
contention.

The script prints the per-stage response-time breakdown (the Fig. 6
algorithm's output) for the video flow, then validates the bounds in
simulation.

Run:  python examples/video_conference.py
"""

from repro import Flow, GmfSpec, holistic_analysis
from repro.sim import SimConfig, simulate
from repro.util.tables import Table
from repro.util.units import mbps, ms
from repro.workloads.mpeg import paper_fig3_flow
from repro.workloads.topologies import paper_fig1_network
from repro.workloads.voip import voip_flow

LINK_SPEED = mbps(100)

net = paper_fig1_network(speed_bps=LINK_SPEED)

flows = [
    # n0 <-> n3 video conference (Fig. 2 route and its reverse).
    paper_fig3_flow(
        route=("n0", "n4", "n6", "n3"), name="video_a", priority=5,
        deadline=ms(100),
    ),
    paper_fig3_flow(
        route=("n3", "n6", "n4", "n0"), name="video_b", priority=5,
        deadline=ms(100),
    ),
    voip_flow(("n0", "n4", "n6", "n3"), name="audio_a", priority=7, deadline=ms(50)),
    voip_flow(("n3", "n6", "n4", "n0"), name="audio_b", priority=7, deadline=ms(50)),
    # Bulk backup n1 -> n2 crossing the backbone at low priority.
    Flow(
        name="backup",
        spec=GmfSpec(
            min_separations=(ms(5),),
            deadlines=(ms(1000),),
            jitters=(0.0,),
            payload_bits=(60_000,),
        ),
        route=("n1", "n4", "n6", "n5", "n2"),
        priority=0,
    ),
]

result = holistic_analysis(net, flows)
print(f"holistic analysis: converged={result.converged} "
      f"after {result.iterations} iteration(s); "
      f"schedulable={result.schedulable}\n")

summary = Table(["flow", "route", "prio", "worst bound (ms)", "deadline (ms)", "ok"])
for f in flows:
    r = result.result(f.name)
    summary.add_row(
        [
            f.name,
            "->".join(f.route),
            f.priority,
            r.worst_response * 1e3,
            min(f.spec.deadlines) * 1e3,
            r.schedulable,
        ]
    )
print(summary.render())

# Per-stage breakdown of the worst video frame (the I+P packet).
frame0 = result.result("video_a").frame(0)
print("\nvideo_a frame 0 (I+P) stage breakdown:")
for label, response in frame0.stage_breakdown():
    print(f"  {label:32s} {response * 1e3:8.4f} ms")
print(f"  {'source jitter':32s} {flows[0].spec.jitters[0] * 1e3:8.4f} ms")
print(f"  {'total (bound)':32s} {frame0.response * 1e3:8.4f} ms")

# Validate in simulation (pessimistic rotation mode).
trace = simulate(
    net, flows, config=SimConfig(duration=3.0, switch_mode="rotation")
)
print(f"\nsimulated {trace.count_completed()} packets "
      f"({trace.events_processed} events)")
check = Table(["flow", "sim worst (ms)", "bound (ms)", "tightness"])
for f in flows:
    observed = trace.worst_response(f.name)
    bound = result.result(f.name).worst_response
    assert observed <= bound, f"bound violated for {f.name}"
    check.add_row([f.name, observed * 1e3, bound * 1e3, observed / bound])
print(check.render())
print("ok: all simulated responses within analysis bounds")
