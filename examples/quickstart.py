#!/usr/bin/env python
"""Quickstart: bound the end-to-end delay of a video flow in 30 lines.

Builds a two-switch Ethernet edge network, describes an MPEG-like video
flow with the generalized multiframe (GMF) model, runs the holistic
schedulability analysis, and cross-checks the bound against the
discrete-event simulator.

Run:  python examples/quickstart.py
"""

from repro import Flow, GmfSpec, Network, holistic_analysis
from repro.sim import SimConfig, simulate
from repro.util.units import mbps, ms

# 1. The network: two hosts, two software Ethernet switches.
net = Network()
net.add_endhost("camera")
net.add_endhost("display")
net.add_switch("sw_a")
net.add_switch("sw_b")
net.add_duplex_link("camera", "sw_a", speed_bps=mbps(100))
net.add_duplex_link("sw_a", "sw_b", speed_bps=mbps(100))
net.add_duplex_link("sw_b", "display", speed_bps=mbps(100))

# 2. The traffic: a 3-frame GMF cycle (one big I-frame, two small
#    B-frames) every 30 ms, 100 ms end-to-end deadline, 1 ms jitter.
video = Flow(
    name="video",
    spec=GmfSpec(
        min_separations=(ms(30),) * 3,
        deadlines=(ms(100),) * 3,
        jitters=(ms(1),) * 3,
        payload_bits=(120_000, 40_000, 40_000),
    ),
    route=("camera", "sw_a", "sw_b", "display"),
    priority=5,
)

# 3. Analyse: per-frame worst-case end-to-end response-time bounds.
result = holistic_analysis(net, [video])
print(f"schedulable: {result.schedulable}")
for frame in result.result("video").frames:
    print(
        f"  frame {frame.frame}: bound {frame.response * 1e3:7.3f} ms "
        f"(deadline {frame.deadline * 1e3:.0f} ms, "
        f"slack {frame.slack * 1e3:7.3f} ms)"
    )

# 4. Sanity-check against the simulator (worst observed <= bound).
trace = simulate(net, [video], config=SimConfig(duration=3.0))
for k in range(3):
    bound = result.response("video", k)
    observed = trace.worst_response("video", k)
    assert observed <= bound, "simulation exceeded the analysis bound!"
    print(
        f"  frame {k}: simulated worst {observed * 1e3:7.3f} ms "
        f"<= bound {bound * 1e3:7.3f} ms "
        f"(tightness {observed / bound:.2f})"
    )
print("ok: all simulated responses within analysis bounds")
