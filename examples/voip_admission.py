#!/usr/bin/env python
"""Admission control for VoIP calls — the paper's operator use case.

A network operator owns an edge network (a 2-level switch tree) and
offers delay-guaranteed VoIP: every call direction must arrive within
20 ms.  Calls request admission one by one; the controller re-runs the
holistic GMF analysis (Sec. 3.5) and accepts a call only if *all*
admitted flows still meet their deadlines.

The script admits calls until the first rejection, prints the
admission trace, and shows what the rejection diagnosis looks like.

Run:  python examples/voip_admission.py
"""

import itertools

from repro import AdmissionController
from repro.util.tables import Table
from repro.util.units import mbps, ms
from repro.workloads.topologies import tree_network
from repro.workloads.voip import voip_flow

# A small but congested edge: 2-level binary switch tree, 10 Mbit/s
# links (legacy access network -> admission bites early), 2 hosts/leaf.
net = tree_network(depth=2, fanout=2, hosts_per_leaf=2, speed_bps=mbps(10))
controller = AdmissionController(net)

# Call pairs alternate between cross-tree host pairs so calls share the
# root links.
hosts = [n.name for n in net.nodes() if n.name.startswith("h")]
left = [h for h in hosts if h.startswith("hsw0")]
right = [h for h in hosts if h.startswith("hsw1")]
pairs = list(itertools.product(left, right))

log = Table(["call", "route", "accepted", "reason / worst slack (ms)"])
admitted = 0
for i in itertools.count():
    a, b = pairs[i % len(pairs)]
    leaf_a, leaf_b = a[1:].split("_")[0], b[1:].split("_")[0]
    route = (a, leaf_a, "sw", leaf_b, b)
    call = voip_flow(
        route, name=f"call{i}", priority=7, deadline=ms(20), codec="g711"
    )
    decision = controller.request(call)
    if decision.accepted:
        admitted += 1
        slack = decision.analysis.result(call.name).worst_slack
        log.add_row([call.name, "->".join(route), True, f"{slack * 1e3:.3f}"])
    else:
        log.add_row([call.name, "->".join(route), False, decision.reason])
        break

print(log.render())
print(f"\nadmitted {admitted} unidirectional calls before the first rejection")

analysis = controller.last_analysis
print("\nfinal admitted set (worst bound per call):")
summary = Table(["flow", "worst bound (ms)", "deadline (ms)", "slack (ms)"])
for name, r in sorted(analysis.flow_results.items()):
    summary.add_row(
        [name, r.worst_response * 1e3, 20.0, r.worst_slack * 1e3]
    )
print(summary.render())

# Releasing a call frees capacity: the previously rejected call now fits.
controller.release("call0")
retry = voip_flow(
    (pairs[admitted % len(pairs)][0],
     pairs[admitted % len(pairs)][0][1:].split("_")[0],
     "sw",
     pairs[admitted % len(pairs)][1][1:].split("_")[0],
     pairs[admitted % len(pairs)][1]),
    name="retry",
    priority=7,
    deadline=ms(20),
)
decision = controller.request(retry)
print(f"\nafter releasing call0, admission of a new call: "
      f"accepted={decision.accepted}")
