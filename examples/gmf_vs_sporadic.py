#!/usr/bin/env python
"""Why GMF? The admission gap against the sporadic model.

The paper's introduction argues the sporadic model is a poor match for
MPEG video: collapsing a GoP to its worst frame at its minimum
separation wildly over-reserves.  This example makes the gap concrete:
admit identical MPEG video flows onto one 100 Mbit/s backbone link
under (a) the paper's GMF analysis and (b) the sporadic collapse, and
count how many flows each admits.

Run:  python examples/gmf_vs_sporadic.py
"""

from repro import holistic_analysis
from repro.baselines import sporadic_collapse, sporadic_holistic_analysis
from repro.core.context import AnalysisContext
from repro.core.utilization import network_convergence_report
from repro.util.tables import Table
from repro.util.units import mbps, ms
from repro.workloads.mpeg import paper_fig3_flow
from repro.workloads.topologies import line_network

net = line_network(2, hosts_per_switch=16, speed_bps=mbps(100))


def mpeg_flow(i: int):
    """The i-th video flow: host i at sw0 -> host i at sw1."""
    return paper_fig3_flow(
        route=(f"h0_{i}", "sw0", "sw1", f"h1_{i}"),
        name=f"video{i}",
        priority=5,
        deadline=ms(150),
    )


def count_admitted(analyze) -> int:
    """Admit identical flows until the analysis first rejects."""
    admitted = []
    for i in range(16):
        tentative = admitted + [mpeg_flow(i)]
        if analyze(tentative):
            admitted = tentative
        else:
            break
    return len(admitted)


gmf_admitted = count_admitted(
    lambda fs: holistic_analysis(net, fs).schedulable
)
sporadic_admitted = count_admitted(
    lambda fs: sporadic_holistic_analysis(net, fs, collapse="sporadic").schedulable
)

# Show the reservation the sporadic collapse makes for one flow.
one = mpeg_flow(0)
collapsed = sporadic_collapse(one)
ctx = AnalysisContext(net, [one])
ctx_c = AnalysisContext(net, [collapsed])
u_gmf = ctx.demand(one, "sw0", "sw1").utilization
u_spor = ctx_c.demand(collapsed, "sw0", "sw1").utilization

t = Table(["model", "per-flow backbone utilisation", "flows admitted"])
t.add_row(["GMF (this paper)", f"{u_gmf:.4f}", gmf_admitted])
t.add_row(["sporadic collapse", f"{u_spor:.4f}", sporadic_admitted])
print(t.render())
print(
    f"\nThe sporadic model reserves {u_spor / u_gmf:.1f}x the bandwidth "
    f"(every 30 ms slot charged at I+P-frame size), so it admits "
    f"{gmf_admitted - sporadic_admitted} fewer video flows on the same link."
)
assert gmf_admitted >= sporadic_admitted
